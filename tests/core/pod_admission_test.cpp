// Targeted edge cases for the hierarchical pod-admission layer: pod metadata
// derived at topology build time, the single-uplink pod, deadlines shorter
// than any feasible window, and the exactly-exhausted budget boundary (which
// must NOT fast-reject — conservative slack keeps the fast path sound).
#include <gtest/gtest.h>

#include "common/fixtures.hpp"
#include "core/taps_scheduler.hpp"
#include "topo/fattree.hpp"
#include "topo/pods.hpp"

namespace taps::core {
namespace {

using topo::FatTree;
using topo::FatTreeConfig;
using topo::kInvalidLink;
using topo::kNoPod;
using topo::PodMap;

TEST(PodMap, FatTreeK4StructureAndBudgets) {
  FatTree topo(FatTreeConfig{4, 1.0});
  const PodMap* pods = topo.pods();
  ASSERT_NE(pods, nullptr);
  EXPECT_EQ(pods->pod_count(), 4);
  for (int p = 0; p < pods->pod_count(); ++p) {
    const topo::PodInfo& info = pods->pod(p);
    // k=4: 2 aggregation switches x 2 core links each, both directions.
    EXPECT_EQ(info.uplinks.size(), 4u);
    EXPECT_EQ(info.downlinks.size(), 4u);
    EXPECT_EQ(info.hosts.size(), 4u);
    // Pod bandwidth budget = sum of uplink capacities, derived at build time.
    EXPECT_DOUBLE_EQ(info.uplink_capacity, 4.0);
    for (const topo::LinkId lid : info.uplinks) {
      EXPECT_EQ(pods->pod_of_link_src(lid), p);
    }
  }
  const std::vector<topo::NodeId>& hosts = topo.hosts();
  for (const topo::NodeId h : hosts) {
    EXPECT_NE(pods->host_uplink(h), kInvalidLink);
    EXPECT_NE(pods->host_downlink(h), kInvalidLink);
    EXPECT_EQ(pods->pod_of(h), topo.pod_of_host(h));
  }
  EXPECT_TRUE(pods->same_pod(hosts[0], hosts[3]));
  EXPECT_FALSE(pods->same_pod(hosts[0], hosts[4]));
  // Core switches belong to no pod.
  EXPECT_EQ(pods->pod_of(topo.core_switch(0)), kNoPod);
}

TEST(PodMap, SingleUplinkPodAtMinimumArity) {
  // k=2 is the degenerate fat-tree: one host, one edge, one agg per pod,
  // one core — every pod has exactly one uplink.
  FatTree topo(FatTreeConfig{2, 1.0});
  const PodMap* pods = topo.pods();
  ASSERT_NE(pods, nullptr);
  EXPECT_EQ(pods->pod_count(), 2);
  for (int p = 0; p < pods->pod_count(); ++p) {
    EXPECT_EQ(pods->pod(p).uplinks.size(), 1u);
    EXPECT_EQ(pods->pod(p).downlinks.size(), 1u);
    EXPECT_DOUBLE_EQ(pods->pod(p).uplink_capacity, 1.0);
  }
}

TEST(PodAdmission, GenericTopologyDisablesTheIndex) {
  // Topologies without pod structure return nullptr pods(): the precheck is
  // inert and the scheduler behaves exactly as before.
  test::Dumbbell d = test::make_dumbbell(2);
  net::Network net(*d.topology);
  test::add_task(net, 0.0, 10.0, {test::flow(d.left[0], d.right[0], 1.0)});
  TapsScheduler sched;  // hierarchical_precheck defaults to true
  test::run(net, sched);
  EXPECT_FALSE(sched.pod_index().enabled());
  EXPECT_EQ(sched.counters().pod_fast_rejects, 0u);
  EXPECT_EQ(test::completed_tasks(net), 1u);
}

TEST(PodAdmission, DeadlineShorterThanAnyFeasibleWindowFastRejects) {
  FatTree topo(FatTreeConfig{4, 1.0});
  net::Network net(topo);
  const std::vector<topo::NodeId>& hosts = topo.hosts();
  // A feasible task arms the no-transmission gate at t=0...
  test::add_task(net, 0.0, 10.0, {test::flow(hosts[0], hosts[1], 1.0)});
  // ...then a task whose transmission time exceeds its whole window even on
  // an idle network (3s of data, 1s window) is provably infeasible without
  // touching the planner — the pure-window precheck fires.
  test::add_task(net, 0.0, 1.0, {test::flow(hosts[8], hosts[12], 3.0)});
  TapsScheduler sched;
  test::run(net, sched);
  EXPECT_EQ(sched.counters().pod_fast_rejects, 1u);
  EXPECT_EQ(sched.counters().tasks_rejected, 1u);
  EXPECT_EQ(sched.counters().tasks_accepted, 1u);
  EXPECT_EQ(net.tasks()[1].state, net::TaskState::kRejected);
  EXPECT_EQ(test::completed_tasks(net), 1u);
}

TEST(PodAdmission, SingleUplinkPodFastRejectsOverload) {
  // On the k=2 tree the pod's single uplink is also the host uplink: once a
  // committed flow owns [0,1] of it, a second cross-pod task wanting 1s of
  // transmission inside a 1.8s window is provably infeasible.
  FatTree topo(FatTreeConfig{2, 1.0});
  net::Network net(topo);
  const std::vector<topo::NodeId>& hosts = topo.hosts();
  ASSERT_EQ(hosts.size(), 2u);
  test::add_task(net, 0.0, 1.5, {test::flow(hosts[0], hosts[1], 1.0)});
  test::add_task(net, 0.0, 1.8, {test::flow(hosts[0], hosts[1], 1.0)});

  TapsScheduler with_precheck;
  test::run(net, with_precheck);
  EXPECT_EQ(with_precheck.counters().pod_fast_rejects, 1u);
  EXPECT_EQ(with_precheck.counters().tasks_accepted, 1u);
  EXPECT_EQ(with_precheck.counters().tasks_rejected, 1u);

  // Oracle: the always-global pipeline decides identically.
  net::Network oracle_net(topo);
  test::add_task(oracle_net, 0.0, 1.5, {test::flow(hosts[0], hosts[1], 1.0)});
  test::add_task(oracle_net, 0.0, 1.8, {test::flow(hosts[0], hosts[1], 1.0)});
  TapsConfig cfg;
  cfg.hierarchical_precheck = false;
  TapsScheduler oracle(cfg);
  test::run(oracle_net, oracle);
  EXPECT_EQ(oracle.counters().pod_fast_rejects, 0u);
  for (std::size_t i = 0; i < net.tasks().size(); ++i) {
    EXPECT_EQ(net.tasks()[i].state, oracle_net.tasks()[i].state) << "task " << i;
  }
}

TEST(PodAdmission, ExactlyExhaustedBudgetIsNotFastRejected) {
  // The second task needs exactly the free time left on the shared host
  // uplink (1s of data, window [1,2] after the incumbent's [0,1]). demand ==
  // provable-free is NOT "provably infeasible": the conservative slack must
  // keep the fast path out and let the planner admit it.
  FatTree topo(FatTreeConfig{4, 1.0});
  net::Network net(topo);
  const std::vector<topo::NodeId>& hosts = topo.hosts();
  test::add_task(net, 0.0, 2.0, {test::flow(hosts[0], hosts[1], 1.0)});
  test::add_task(net, 0.0, 2.0, {test::flow(hosts[0], hosts[2], 1.0)});
  TapsScheduler sched;
  test::run(net, sched);
  EXPECT_EQ(sched.counters().pod_fast_rejects, 0u);
  EXPECT_EQ(sched.counters().tasks_accepted, 2u);
  EXPECT_EQ(test::completed_tasks(net), 2u);
}

TEST(PodAdmission, RuntimeToggleDisablesFastPath) {
  FatTree topo(FatTreeConfig{4, 1.0});
  net::Network net(topo);
  const std::vector<topo::NodeId>& hosts = topo.hosts();
  test::add_task(net, 0.0, 10.0, {test::flow(hosts[0], hosts[1], 1.0)});
  test::add_task(net, 0.0, 1.0, {test::flow(hosts[8], hosts[12], 3.0)});
  TapsScheduler sched;
  sched.set_hierarchical_precheck(false);
  test::run(net, sched);
  // Same decision, no fast path: the flag only short-circuits effort.
  EXPECT_EQ(sched.counters().pod_fast_rejects, 0u);
  EXPECT_EQ(sched.counters().tasks_rejected, 1u);
  EXPECT_EQ(sched.counters().tasks_accepted, 1u);
}

}  // namespace
}  // namespace taps::core
