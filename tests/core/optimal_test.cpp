#include "core/optimal.hpp"

#include <gtest/gtest.h>

namespace taps::core {
namespace {

TEST(EdfFeasible, EmptyIsFeasible) { EXPECT_TRUE(edf_feasible({})); }

TEST(EdfFeasible, SingleJobFits) {
  EXPECT_TRUE(edf_feasible({SlFlow{0.0, 4.0, 4.0}}));
  EXPECT_FALSE(edf_feasible({SlFlow{0.0, 4.0, 4.1}}));
}

TEST(EdfFeasible, TwoJobsSerialized) {
  EXPECT_TRUE(edf_feasible({SlFlow{0.0, 2.0, 1.0}, SlFlow{0.0, 4.0, 3.0}}));
  EXPECT_FALSE(edf_feasible({SlFlow{0.0, 2.0, 1.0}, SlFlow{0.0, 3.0, 3.0}}));
}

TEST(EdfFeasible, PreemptionEnablesFit) {
  // Long loose job + short tight job arriving later: EDF preempts.
  EXPECT_TRUE(edf_feasible({SlFlow{0.0, 10.0, 5.0}, SlFlow{2.0, 3.0, 1.0}}));
}

TEST(EdfFeasible, ReleaseTimesRespected) {
  // Job can't start before release even if the machine is idle.
  EXPECT_FALSE(edf_feasible({SlFlow{3.0, 4.0, 2.0}}));
  EXPECT_TRUE(edf_feasible({SlFlow{3.0, 5.0, 2.0}}));
}

TEST(EdfFeasible, IdleGapsHandled) {
  EXPECT_TRUE(edf_feasible({SlFlow{0.0, 1.0, 1.0}, SlFlow{5.0, 6.0, 1.0}}));
}

TEST(EdfFeasible, PaperFig1TaskSets) {
  // Fig. 1: t1 = {2,4} with deadline 4 is infeasible on one unit link;
  // t2 = {1,3} is exactly feasible; both together are not.
  EXPECT_FALSE(edf_feasible({SlFlow{0, 4, 2}, SlFlow{0, 4, 4}}));
  EXPECT_TRUE(edf_feasible({SlFlow{0, 4, 1}, SlFlow{0, 4, 3}}));
  EXPECT_FALSE(edf_feasible({SlFlow{0, 4, 2}, SlFlow{0, 4, 4}, SlFlow{0, 4, 1},
                             SlFlow{0, 4, 3}}));
}

TEST(OptimalSingleLink, PicksLargestFeasibleSubset) {
  // Fig. 1's instance: the optimum is exactly one task (t2).
  const std::vector<SlTask> tasks{
      SlTask{{SlFlow{0, 4, 2}, SlFlow{0, 4, 4}}},
      SlTask{{SlFlow{0, 4, 1}, SlFlow{0, 4, 3}}},
  };
  const OptimalResult r = optimal_single_link(tasks);
  EXPECT_EQ(r.tasks_completed, 1u);
  ASSERT_EQ(r.accepted.size(), 1u);
  EXPECT_EQ(r.accepted[0], 1u);
}

TEST(OptimalSingleLink, Fig2BothTasksFit) {
  const std::vector<SlTask> tasks{
      SlTask{{SlFlow{0, 4, 1}, SlFlow{0, 4, 1}}},
      SlTask{{SlFlow{0, 2, 1}, SlFlow{0, 2, 1}}},
  };
  const OptimalResult r = optimal_single_link(tasks);
  EXPECT_EQ(r.tasks_completed, 2u);
}

TEST(OptimalSingleLink, EmptyInput) {
  const OptimalResult r = optimal_single_link({});
  EXPECT_EQ(r.tasks_completed, 0u);
  EXPECT_TRUE(r.accepted.empty());
}

TEST(OptimalSingleLink, AllInfeasibleTasks) {
  const std::vector<SlTask> tasks{SlTask{{SlFlow{0, 1, 2}}}, SlTask{{SlFlow{0, 1, 3}}}};
  EXPECT_EQ(optimal_single_link(tasks).tasks_completed, 0u);
}

TEST(OptimalSingleLink, PrefersMoreTasksOverBigTasks) {
  // One big task excludes two small ones; optimum takes the two.
  const std::vector<SlTask> tasks{
      SlTask{{SlFlow{0, 4, 4}}},
      SlTask{{SlFlow{0, 4, 2}}},
      SlTask{{SlFlow{0, 4, 2}}},
  };
  const OptimalResult r = optimal_single_link(tasks);
  EXPECT_EQ(r.tasks_completed, 2u);
  EXPECT_EQ(r.accepted, (std::vector<std::size_t>{1, 2}));
}

TEST(OptimalSingleLink, TooManyTasksThrows) {
  std::vector<SlTask> tasks(21, SlTask{{SlFlow{0, 1, 0.01}}});
  EXPECT_THROW((void)optimal_single_link(tasks), std::invalid_argument);
}

}  // namespace
}  // namespace taps::core
