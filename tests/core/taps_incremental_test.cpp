// Unit tests for the incremental-replanning machinery: the occupancy undo
// journal, cross-arrival/within-arrival reuse counters, the missed-deadline
// no-waste invalidation, and the periodic occupancy/slice trim. The
// bit-identity of incremental vs full replanning itself is pinned by
// taps_incremental_prop_test.cpp.
#include <gtest/gtest.h>

#include <vector>

#include "common/fixtures.hpp"
#include "core/occupancy.hpp"
#include "core/taps_scheduler.hpp"
#include "util/rng.hpp"

namespace taps::core {
namespace {

using test::add_task;
using test::flow;
using test::make_dumbbell;

topo::Path path_of(std::initializer_list<topo::LinkId> links) {
  topo::Path p;
  p.links = links;
  return p;
}

util::IntervalSet set_of(std::initializer_list<util::Interval> ivs) {
  util::IntervalSet s;
  for (const auto& iv : ivs) s.insert(iv);
  return s;
}

TEST(OccupancyJournal, RollbackRestoresOccupyBitwise) {
  OccupancyMap occ(3);
  OccupancyJournal journal;
  occ.occupy(path_of({0, 1}), set_of({{1.0, 2.0}, {4.0, 5.0}}));
  const std::vector<util::IntervalSet> before{occ.link(0), occ.link(1), occ.link(2)};

  const OccupancyCheckpoint cp = OccupancyMap::checkpoint(journal);
  occ.occupy(path_of({1, 2}), set_of({{2.0, 3.0}}), &journal);
  occ.occupy(path_of({0}), set_of({{0.0, 1.0}, {2.0, 4.0}}), &journal);  // merges neighbors
  EXPECT_EQ(occ.link(0), set_of({{0.0, 5.0}}));

  occ.rollback(journal, cp);
  EXPECT_TRUE(journal.empty());
  for (topo::LinkId l = 0; l < 3; ++l) {
    EXPECT_EQ(occ.link(l), before[static_cast<std::size_t>(l)]) << "link " << l;
  }
}

TEST(OccupancyJournal, RollbackRestoresVacateBitwise) {
  OccupancyMap occ(2);
  OccupancyJournal journal;
  occ.occupy(path_of({0, 1}), set_of({{0.0, 1.0}, {2.0, 3.0}, {5.0, 6.0}}));
  const std::vector<util::IntervalSet> before{occ.link(0), occ.link(1)};

  const OccupancyCheckpoint cp = OccupancyMap::checkpoint(journal);
  occ.vacate(path_of({0, 1}), set_of({{2.0, 3.0}}), journal);
  EXPECT_EQ(occ.link(0), set_of({{0.0, 1.0}, {5.0, 6.0}}));

  occ.rollback(journal, cp);
  for (topo::LinkId l = 0; l < 2; ++l) {
    EXPECT_EQ(occ.link(l), before[static_cast<std::size_t>(l)]) << "link " << l;
  }
}

TEST(OccupancyJournal, NestedCheckpointsUnwindInLifoOrder) {
  OccupancyMap occ(1);
  OccupancyJournal journal;
  occ.occupy(path_of({0}), set_of({{0.0, 10.0}}));
  const util::IntervalSet full = occ.link(0);

  const OccupancyCheckpoint cp0 = OccupancyMap::checkpoint(journal);
  occ.vacate(path_of({0}), set_of({{2.0, 3.0}}), journal);
  const util::IntervalSet holed = occ.link(0);
  const OccupancyCheckpoint cp1 = OccupancyMap::checkpoint(journal);
  occ.vacate(path_of({0}), set_of({{5.0, 7.0}}), journal);
  occ.occupy(path_of({0}), set_of({{5.5, 6.0}}), &journal);

  occ.rollback(journal, cp1);
  EXPECT_EQ(occ.link(0), holed);
  occ.rollback(journal, cp0);
  EXPECT_EQ(occ.link(0), full);
  EXPECT_TRUE(journal.empty());
}

TEST(OccupancyJournal, RandomizedRoundTrip) {
  // Many random logged mutations against a mirror kept by plain copies: a
  // full rollback must restore the starting state bitwise every time.
  util::Rng rng(20260807);
  for (int round = 0; round < 50; ++round) {
    OccupancyMap occ(4);
    OccupancyJournal journal;
    // Random non-journaled base state (skip draws that would collide:
    // occupy's precondition is a conflict-free placement).
    for (int k = 0; k < 8; ++k) {
      const auto link = static_cast<topo::LinkId>(rng.uniform_int(0, 3));
      const double lo = rng.uniform_real(0.0, 40.0);
      const double hi = lo + rng.uniform_real(0.1, 3.0);
      if (!occ.link(link).intersects(lo, hi)) {
        occ.occupy(path_of({link}), set_of({{lo, hi}}));
      }
    }
    std::vector<util::IntervalSet> before;
    for (topo::LinkId l = 0; l < 4; ++l) before.push_back(occ.link(l));

    for (int k = 0; k < 30; ++k) {
      const auto link = static_cast<topo::LinkId>(rng.uniform_int(0, 3));
      const double lo = rng.uniform_real(0.0, 40.0);
      const double hi = lo + rng.uniform_real(0.1, 5.0);
      if (rng.bernoulli(0.5)) {
        occ.vacate(path_of({link}), set_of({{lo, hi}}), journal);
      } else if (!occ.link(link).intersects(lo, hi)) {
        occ.occupy(path_of({link}), set_of({{lo, hi}}), &journal);
      }
    }
    occ.rollback(journal, OccupancyCheckpoint{});
    for (topo::LinkId l = 0; l < 4; ++l) {
      ASSERT_EQ(occ.link(l), before[static_cast<std::size_t>(l)])
          << "round " << round << " link " << l;
      ASSERT_TRUE(occ.link(l).check_invariants());
    }
  }
}

TEST(TapsIncremental, CascadeReusesCommittedPrefix) {
  // Same-instant arrival cascade: nothing transmits between arrivals, so
  // every arrival after the first should adopt the committed incumbents
  // wholesale instead of replanning them.
  auto d = make_dumbbell(8);
  net::Network net(*d.topology);
  for (int i = 0; i < 8; ++i) {
    add_task(net, 0.0, 1.0 + i, {flow(d.left[static_cast<std::size_t>(i)],
                                      d.right[static_cast<std::size_t>(i)], 0.5)});
  }
  TapsScheduler sched;
  (void)test::run(net, sched);

  EXPECT_EQ(test::completed_tasks(net), 8u);
  const TapsCounters& c = sched.counters();
  EXPECT_GT(c.cross_arrival_reuse_flows, 0u);
  // With deadlines increasing, each newcomer sorts last: arrival k adopts
  // all k incumbents, so total planning work stays linear — far below the
  // quadratic sum a full replan per arrival would do.
  EXPECT_EQ(c.cross_arrival_reuse_flows, 0u + 1 + 2 + 3 + 4 + 5 + 6 + 7);
  EXPECT_EQ(c.flows_planned, 8u);
}

TEST(TapsIncremental, CheckpointReuseOnRejectedNewcomer) {
  // A newcomer that gets rejected triggers the compacting replan; it should
  // resume from the trial's incumbent prefix, not replan it.
  auto d = make_dumbbell();
  net::Network net(*d.topology);
  add_task(net, 0.0, 4.0, {flow(d.left[0], d.right[0], 3.0)});
  add_task(net, 0.0, 4.0, {flow(d.left[1], d.right[1], 3.0)});  // cannot fit
  TapsScheduler sched;
  (void)test::run(net, sched);

  EXPECT_EQ(sched.counters().tasks_accepted, 1u);
  EXPECT_EQ(sched.counters().tasks_rejected, 1u);
  // The incumbent precedes the loser in EDF+SJF order (same deadline,
  // remaining 3.0 vs 3.0, lower flow id), so the compacting replan keeps it
  // from the trial checkpoint.
  EXPECT_GT(sched.counters().checkpoint_reuse_flows, 0u);
}

TEST(TapsIncremental, MissedDeadlineStopsSiblingsAndInvalidatesReuse) {
  // Satellite regression for the no-waste rule: when an admitted flow is
  // reported missed, every unfinished sibling must be rejected, its rate
  // zeroed and its slices cleared — and the scheduler must keep working
  // (the next arrival takes the full-replan path and re-establishes the
  // incremental session's validity).
  auto d = make_dumbbell(6);
  net::Network net(*d.topology);
  const net::TaskId t0 =
      add_task(net, 0.0, 10.0,
               {flow(d.left[0], d.right[0], 2.0), flow(d.left[1], d.right[1], 3.0),
                flow(d.left[2], d.right[2], 4.0)});
  const net::TaskId t1 = add_task(net, 0.0, 40.0, {flow(d.left[3], d.right[3], 1.0)});
  TapsScheduler sched;
  sched.bind(net);
  sched.on_task_arrival(t0, 0.0);
  sched.on_task_arrival(t1, 0.0);
  ASSERT_EQ(sched.counters().tasks_accepted, 2u);

  // Simulate the data plane reporting the first flow missed (as the packet
  // engine does when an exact-fit admission lands a pipeline late).
  const net::FlowId missed = net.tasks()[static_cast<std::size_t>(t0)].spec.flows[0];
  net.flow(missed).state = net::FlowState::kMissed;
  sched.on_flow_finished(missed, 5.0);

  for (const net::FlowId sibling : net.tasks()[static_cast<std::size_t>(t0)].spec.flows) {
    if (sibling == missed) continue;
    const net::Flow& s = net.flow(sibling);
    EXPECT_EQ(s.state, net::FlowState::kRejected) << "sibling " << sibling;
    EXPECT_DOUBLE_EQ(s.rate, 0.0) << "sibling " << sibling;
    EXPECT_TRUE(sched.slices(sibling).empty()) << "sibling " << sibling;
  }
  // The unrelated task is untouched.
  const net::FlowId other = net.tasks()[static_cast<std::size_t>(t1)].spec.flows[0];
  EXPECT_EQ(net.flow(other).state, net::FlowState::kActive);

  // A later arrival still schedules correctly on the full-replan fallback.
  const net::TaskId t2 = add_task(net, 6.0, 40.0, {flow(d.left[4], d.right[4], 1.0)});
  sched.on_task_arrival(t2, 6.0);
  EXPECT_EQ(sched.counters().tasks_accepted, 3u);
  EXPECT_FALSE(sched.slices(net.tasks()[static_cast<std::size_t>(t2)].spec.flows[0]).empty());
}

std::size_t stored_intervals(const TapsScheduler& sched, const net::Network& net,
                             std::size_t link_count) {
  std::size_t total = 0;
  for (topo::LinkId l = 0; l < static_cast<topo::LinkId>(link_count); ++l) {
    total += sched.occupancy().link(l).size();
  }
  for (const auto& f : net.flows()) total += sched.slices(f.id()).size();
  return total;
}

TEST(TapsIncremental, TrimKeepsIntervalStorageBoundedOnLongStreams) {
  // Satellite regression for OccupancyMap::trim_before: on a long arrival
  // stream with preemptions (whose victims would otherwise keep their stale
  // slices forever), the periodic trim keeps total stored intervals bounded
  // and does not change a single admission decision.
  const auto build = [] {
    auto d = make_dumbbell(4);
    auto net = std::make_unique<net::Network>(*d.topology);
    double t = 0.0;
    for (int i = 0; i < 120; ++i) {
      // A big task that gets admitted, then an urgent one that squeezes it
      // out: under kSchedulable the zero-schedulable victim is preempted and
      // its remaining slices go stale at the preemption point.
      add_task(*net, t, t + 7.0, {flow(d.left[0], d.right[0], 6.0)});
      add_task(*net, t + 0.5, t + 2.6, {flow(d.left[1], d.right[1], 2.0)});
      t += 8.0;
    }
    return std::pair{std::move(d), std::move(net)};
  };

  auto [d_on, net_on] = build();
  TapsConfig cfg_on;
  cfg_on.preempt_policy = PreemptPolicy::kSchedulable;
  cfg_on.trim_interval = 16;
  TapsScheduler trimmed(cfg_on);
  (void)test::run(*net_on, trimmed);

  auto [d_off, net_off] = build();
  TapsConfig cfg_off;
  cfg_off.preempt_policy = PreemptPolicy::kSchedulable;
  cfg_off.trim_interval = 0;
  TapsScheduler untrimmed(cfg_off);
  (void)test::run(*net_off, untrimmed);

  // Identical decisions with and without trimming.
  ASSERT_EQ(net_on->tasks().size(), net_off->tasks().size());
  for (std::size_t i = 0; i < net_on->tasks().size(); ++i) {
    EXPECT_EQ(net_on->tasks()[i].state, net_off->tasks()[i].state) << "task " << i;
  }
  EXPECT_EQ(trimmed.counters().tasks_accepted, untrimmed.counters().tasks_accepted);
  EXPECT_EQ(trimmed.counters().tasks_preempted, untrimmed.counters().tasks_preempted);
  EXPECT_GT(trimmed.counters().tasks_preempted, 0u);  // the stream must preempt
  EXPECT_GT(trimmed.counters().occupancy_trims, 0u);
  EXPECT_EQ(untrimmed.counters().occupancy_trims, 0u);

  // The trimmed scheduler's end-of-run storage is small and, unlike the
  // untrimmed one's, does not scale with the number of preempted victims.
  const std::size_t links = net_on->graph().link_count();
  const std::size_t kept = stored_intervals(trimmed, *net_on, links);
  const std::size_t grown = stored_intervals(untrimmed, *net_off, links);
  EXPECT_LT(kept, grown);
  EXPECT_LE(kept, 64u);
}

}  // namespace
}  // namespace taps::core
