// Makeup transmission: a TAPS flow whose granted slices are exhausted while
// bytes remain (possible only under packet-quantized execution) may transmit
// on links that are idle in the committed plan. These tests drive the
// scheduler directly to pin the grant/deny/boundary semantics.
#include <gtest/gtest.h>

#include "common/fixtures.hpp"
#include "core/taps_scheduler.hpp"

namespace taps::core {
namespace {

using test::add_task;
using test::flow;
using test::make_dumbbell;

struct MakeupFixture : public ::testing::Test {
  test::Dumbbell d = make_dumbbell();
  net::Network net{*d.topology};
  TapsScheduler sched;

  /// Admit a single-flow task and then simulate a packet-style stall: move
  /// time past the flow's last slice while leaving `leftover` bytes unsent.
  void admit_and_strand(net::TaskId tid, double leftover) {
    sched.on_task_arrival(tid, 0.0);
    ASSERT_EQ(net.task(tid).state, net::TaskState::kAdmitted);
    net::Flow& f = net.flow(net.task(tid).spec.flows[0]);
    f.remaining = leftover;
    f.bytes_sent = f.spec.size - leftover;
  }
};

TEST_F(MakeupFixture, StrandedTailGetsIdleLinks) {
  const net::TaskId t0 = add_task(net, 0.0, 10.0, {flow(d.left[0], d.right[0], 2.0)});
  sched.bind(net);
  admit_and_strand(t0, 0.25);

  // Past the last slice end (2.0), the plan is idle: the stray gets full rate.
  (void)sched.assign_rates(3.0);
  EXPECT_DOUBLE_EQ(net.flow(0).rate, 1.0);
}

TEST_F(MakeupFixture, DeniedWhilePlannedSliceOccupiesLink) {
  const net::TaskId t0 = add_task(net, 0.0, 10.0, {flow(d.left[0], d.right[0], 2.0)});
  sched.bind(net);
  sched.on_task_arrival(t0, 0.0);
  // Second task's flow is planned right after the first: [2, 5).
  const net::TaskId t1 = add_task(net, 0.0, 10.0, {flow(d.left[1], d.right[1], 3.0)});
  sched.on_task_arrival(t1, 0.0);

  // Strand flow 0 with a tail, then ask for rates inside flow 1's slice.
  net::Flow& f0 = net.flow(0);
  f0.remaining = 0.25;
  f0.bytes_sent = f0.spec.size - 0.25;
  const double boundary = sched.assign_rates(3.0);

  EXPECT_DOUBLE_EQ(f0.rate, 0.0);  // bottleneck is occupied by flow 1's slice
  EXPECT_DOUBLE_EQ(net.flow(1).rate, 1.0);
  // The stray is told to retry when the occupying slice ends.
  EXPECT_DOUBLE_EQ(boundary, 5.0);

  // After flow 1's slice, the stray gets its makeup grant.
  (void)sched.assign_rates(5.5);
  EXPECT_DOUBLE_EQ(net.flow(0).rate, 1.0);
}

TEST_F(MakeupFixture, TwoStraysNeverShareALink) {
  const net::TaskId t0 = add_task(net, 0.0, 10.0, {flow(d.left[0], d.right[0], 1.0)});
  const net::TaskId t1 = add_task(net, 0.0, 10.0, {flow(d.left[1], d.right[1], 1.0)});
  sched.bind(net);
  sched.on_task_arrival(t0, 0.0);
  sched.on_task_arrival(t1, 0.0);
  for (const net::FlowId fid : {0, 1}) {
    net::Flow& f = net.flow(fid);
    f.remaining = 0.1;
    f.bytes_sent = f.spec.size - 0.1;
  }
  (void)sched.assign_rates(6.0);  // both plans are exhausted and links idle
  // Exactly one stray wins the shared bottleneck this round.
  const int running = (net.flow(0).rate > 0.0 ? 1 : 0) + (net.flow(1).rate > 0.0 ? 1 : 0);
  EXPECT_EQ(running, 1);
}

TEST_F(MakeupFixture, FlowWithFutureSliceWaitsInstead) {
  const net::TaskId t0 = add_task(net, 0.0, 10.0, {flow(d.left[0], d.right[0], 2.0)});
  const net::TaskId t1 = add_task(net, 0.0, 10.0, {flow(d.left[1], d.right[1], 3.0)});
  sched.bind(net);
  sched.on_task_arrival(t0, 0.0);
  sched.on_task_arrival(t1, 0.0);  // planned [2, 5) behind flow 0

  // Before its slice, flow 1 simply waits (no makeup for unstarted plans).
  const double boundary = sched.assign_rates(1.0);
  EXPECT_DOUBLE_EQ(net.flow(1).rate, 0.0);
  EXPECT_DOUBLE_EQ(boundary, 2.0);
}

}  // namespace
}  // namespace taps::core
