#include "core/path_allocation.hpp"

#include <gtest/gtest.h>

#include "common/fixtures.hpp"

namespace taps::core {
namespace {

using test::add_task;
using test::flow;
using test::make_dumbbell;
using test::make_fig3_topology;

TEST(SortEdfSjf, OrdersByDeadlineThenSize) {
  auto d = make_dumbbell();
  net::Network net(*d.topology);
  add_task(net, 0.0, 4.0, {flow(d.left[0], d.right[0], 2.0)});  // flow 0
  add_task(net, 0.0, 2.0, {flow(d.left[1], d.right[1], 5.0)});  // flow 1
  add_task(net, 0.0, 2.0, {flow(d.left[2], d.right[2], 1.0)});  // flow 2
  std::vector<net::FlowId> order{0, 1, 2};
  sort_edf_sjf(net, order);
  EXPECT_EQ(order, (std::vector<net::FlowId>{2, 1, 0}));  // d2/s1, d2/s5, d4
}

TEST(PlanOneFlow, PicksEarliestCompletionPath) {
  // Fig. 3 topology: two hops differ; here just verify the planner avoids a
  // busy path segment by choosing slices after it.
  auto d = make_dumbbell();
  net::Network net(*d.topology);
  add_task(net, 0.0, 10.0, {flow(d.left[0], d.right[0], 2.0)});

  OccupancyMap occ(net.graph().link_count());
  const PlanConfig config{};
  const FlowPlan plan = plan_one_flow(net, occ, 0, 0.0, config);
  ASSERT_TRUE(plan.feasible);
  EXPECT_DOUBLE_EQ(plan.completion, 2.0);
  EXPECT_TRUE(topo::is_valid_path(net.graph(), plan.path, d.left[0], d.right[0]));
  EXPECT_NEAR(plan.slices.measure(), 2.0, 1e-12);
}

TEST(PlanOneFlow, InfeasibleWhenDeadlineTooTight) {
  auto d = make_dumbbell();
  net::Network net(*d.topology);
  add_task(net, 0.0, 1.0, {flow(d.left[0], d.right[0], 2.0)});
  OccupancyMap occ(net.graph().link_count());
  const FlowPlan plan = plan_one_flow(net, occ, 0, 0.0, PlanConfig{});
  EXPECT_FALSE(plan.feasible);
}

TEST(PlanOneFlow, MultipathRoutesAroundBusyArm) {
  // Partial fat-tree style diamond via the Fig. 3 topology: flow 1->4 can
  // take S1-S5-S4 only; instead use dumbbell variant with two arms:
  topo::Graph g;
  const auto a = g.add_node(topo::NodeKind::kHost, "a");
  const auto b = g.add_node(topo::NodeKind::kHost, "b");
  const auto x = g.add_node(topo::NodeKind::kTor, "x");
  const auto y = g.add_node(topo::NodeKind::kTor, "y");
  g.add_duplex_link(a, x, 1.0);
  g.add_duplex_link(a, y, 1.0);
  g.add_duplex_link(x, b, 1.0);
  g.add_duplex_link(y, b, 1.0);
  topo::GenericTopology topo(std::move(g), {a, b}, "diamond");
  net::Network net(topo);
  add_task(net, 0.0, 10.0, {flow(a, b, 2.0)});

  OccupancyMap occ(net.graph().link_count());
  // Make the x arm busy [0,5): planner should route via y and finish at 2.
  const auto x_link = topo.graph().link_between(x, b);
  util::IntervalSet busy;
  busy.insert(0.0, 5.0);
  topo::Path px;
  px.links = {x_link};
  occ.occupy(px, busy);

  const FlowPlan plan = plan_one_flow(net, occ, 0, 0.0, PlanConfig{});
  ASSERT_TRUE(plan.feasible);
  EXPECT_DOUBLE_EQ(plan.completion, 2.0);
  // The chosen path must not include the busy x->b link.
  for (const topo::LinkId lid : plan.path.links) EXPECT_NE(lid, x_link);
}

TEST(PlanFlows, CommitsOccupancyBetweenFlows) {
  auto d = make_dumbbell();
  net::Network net(*d.topology);
  add_task(net, 0.0, 10.0, {flow(d.left[0], d.right[0], 2.0)});
  add_task(net, 0.0, 10.0, {flow(d.left[1], d.right[1], 3.0)});
  OccupancyMap occ(net.graph().link_count());
  std::vector<net::FlowId> order{0, 1};
  const auto plans = plan_flows(net, occ, order, 0.0, PlanConfig{});
  ASSERT_EQ(plans.size(), 2u);
  EXPECT_DOUBLE_EQ(plans[0].completion, 2.0);
  EXPECT_DOUBLE_EQ(plans[1].completion, 5.0);  // serialized on the bottleneck
  EXPECT_TRUE(plans[1].slices.intersect(plans[0].slices).empty());
}

TEST(PlanFlows, InfeasibleFlowOccupiesNothing) {
  auto d = make_dumbbell();
  net::Network net(*d.topology);
  add_task(net, 0.0, 2.0, {flow(d.left[0], d.right[0], 2.0)});
  add_task(net, 0.0, 2.0, {flow(d.left[1], d.right[1], 2.0)});  // cannot fit
  OccupancyMap occ(net.graph().link_count());
  std::vector<net::FlowId> order{0, 1};
  const auto plans = plan_flows(net, occ, order, 0.0, PlanConfig{});
  EXPECT_TRUE(plans[0].feasible);
  EXPECT_FALSE(plans[1].feasible);
  // The bottleneck carries only flow 0's two units.
  const auto bottleneck = net.graph().link_between(1, 0) != topo::kInvalidLink
                              ? net.graph().link_between(0, 1)
                              : 0;
  (void)bottleneck;
  double total = 0.0;
  for (const auto& l : net.graph().links()) total += occ.link(l.id).measure();
  // flow 0 occupies its 3 path links for 2 units each.
  EXPECT_NEAR(total, 6.0, 1e-9);
}

// Paper Fig. 3: global slice scheduling completes all four flows, including
// f4's split allocation (0,1) & (2,3).
TEST(PlanFlows, Fig3GlobalScheduleFitsAllFour) {
  auto t = make_fig3_topology();
  net::Network net(*t.topology);
  add_task(net, 0.0, 1.0, {flow(t.h1, t.h2, 1.0)});  // f1
  add_task(net, 0.0, 2.0, {flow(t.h1, t.h4, 1.0)});  // f2
  add_task(net, 0.0, 2.0, {flow(t.h3, t.h2, 1.0)});  // f3
  add_task(net, 0.0, 3.0, {flow(t.h3, t.h4, 2.0)});  // f4

  OccupancyMap occ(net.graph().link_count());
  std::vector<net::FlowId> order{0, 1, 2, 3};
  sort_edf_sjf(net, order);
  const auto plans = plan_flows(net, occ, order, 0.0, PlanConfig{});

  for (const auto& p : plans) {
    EXPECT_TRUE(p.feasible) << "flow " << p.flow;
    EXPECT_LE(p.completion, net.flow(p.flow).spec.deadline + 1e-9);
  }
  // f4 (flow id 3) is the split allocation: (0,1) and (2,3), as in Fig. 3(b).
  const FlowPlan* f4 = nullptr;
  for (const auto& p : plans) {
    if (p.flow == 3) f4 = &p;
  }
  ASSERT_NE(f4, nullptr);
  ASSERT_EQ(f4->slices.size(), 2u);
  EXPECT_EQ(f4->slices.intervals()[0], (util::Interval{0.0, 1.0}));
  EXPECT_EQ(f4->slices.intervals()[1], (util::Interval{2.0, 3.0}));
  EXPECT_DOUBLE_EQ(f4->completion, 3.0);
}

}  // namespace
}  // namespace taps::core
