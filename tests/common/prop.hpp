// Minimal seeded property-testing kit for the repo's test suites.
//
// Design goals, in order: deterministic reproduction (every failure prints a
// seed that replays the exact case), bounded greedy shrinking (vector-valued
// counterexamples are minimized by chunk removal, delta-debugging style), and
// zero dependencies beyond GoogleTest and util::Rng.
//
// Usage:
//
//   TAPS_PROP(IntervalSetProp, MatchesReference, 1000) {
//     prop.for_all(
//         [](util::Rng& rng) { return generate_ops(rng); },           // Gen
//         [](const std::vector<Op>& ops) -> std::optional<std::string> {
//           return run_against_model(ops);  // nullopt = pass
//         });
//   }
//
// The generator draws everything from the per-case util::Rng; the property
// returns std::nullopt on success or a failure description (thrown
// exceptions are treated as failures too, so oracle-throwing properties work
// unchanged). On failure the kit shrinks, then reports the seed and the
// shrunk counterexample via ADD_FAILURE; re-running the binary with
// TAPS_PROP_SEED=<seed> replays the failing case first (case 0), so a
// printed seed reproduces deterministically. See docs/TESTING.md.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace taps::test::prop {

struct Config {
  std::size_t cases = 200;
  /// Base seed; TAPS_PROP_SEED in the environment overrides it.
  std::uint64_t seed = 0x7461707370726f70ULL;  // "tapsprop"
  /// Cap on property evaluations spent shrinking one counterexample.
  std::size_t max_shrink_evals = 2000;
};

inline std::uint64_t base_seed(const Config& cfg) {
  if (const char* env = std::getenv("TAPS_PROP_SEED")) {
    return std::strtoull(env, nullptr, 0);
  }
  return cfg.seed;
}

/// Case 0 uses the base seed itself, so TAPS_PROP_SEED=<printed seed>
/// replays a reported failure as the first case.
inline std::uint64_t case_seed(std::uint64_t base, std::size_t index) {
  return index == 0 ? base : util::hash_combine(base, index);
}

// ---- printing ----------------------------------------------------------

template <typename T>
std::string show(const T& value) {
  std::ostringstream os;
  os << value;
  return os.str();
}

template <typename T>
std::string show(const std::vector<T>& values) {
  std::ostringstream os;
  os << "[" << values.size() << " elements]";
  for (std::size_t i = 0; i < values.size(); ++i) {
    os << "\n    #" << i << ": " << show(values[i]);
  }
  return os.str();
}

// ---- shrinking ---------------------------------------------------------

/// Customization point: candidates for a smaller value, tried in order.
/// The default offers nothing (scalar values are reported as-is).
template <typename Value>
struct Shrinker {
  static std::vector<Value> candidates(const Value&) { return {}; }
};

/// Vectors shrink by removing contiguous chunks — first halves, then
/// quarters, ... down to single elements. Greedy re-application converges to
/// a locally minimal failing subsequence.
template <typename T>
struct Shrinker<std::vector<T>> {
  static std::vector<std::vector<T>> candidates(const std::vector<T>& v) {
    std::vector<std::vector<T>> out;
    if (v.empty()) return out;
    for (std::size_t chunk = v.size(); chunk >= 1; chunk /= 2) {
      for (std::size_t start = 0; start < v.size(); start += chunk) {
        std::vector<T> smaller;
        smaller.reserve(v.size() - std::min(chunk, v.size() - start));
        smaller.insert(smaller.end(), v.begin(),
                       v.begin() + static_cast<std::ptrdiff_t>(start));
        smaller.insert(smaller.end(),
                       v.begin() + static_cast<std::ptrdiff_t>(
                                       std::min(start + chunk, v.size())),
                       v.end());
        out.push_back(std::move(smaller));
      }
      if (chunk == 1) break;
    }
    return out;
  }
};

// ---- runner ------------------------------------------------------------

class Runner {
 public:
  explicit Runner(std::size_t cases) { cfg_.cases = cases; }

  [[nodiscard]] Config& config() { return cfg_; }

  /// Run `prop` over `cfg_.cases` generated values. Stops at the first
  /// failure (after shrinking it); later cases of a failing property are
  /// rarely informative and always slower.
  template <typename Gen, typename Prop>
  void for_all(Gen&& gen, Prop&& prop) {
    const std::uint64_t base = base_seed(cfg_);
    for (std::size_t i = 0; i < cfg_.cases; ++i) {
      const std::uint64_t seed = case_seed(base, i);
      util::Rng rng(seed);
      auto value = gen(rng);
      std::optional<std::string> failure = run_one(prop, value);
      if (!failure) continue;

      const std::size_t original_size = size_of(value);
      std::size_t evals = 0;
      shrink(prop, value, failure, evals);
      ADD_FAILURE() << "property failed on case " << i << "/" << cfg_.cases << " (seed "
                    << seed << ")\n"
                    << "  reproduce: TAPS_PROP_SEED=" << seed
                    << " <binary> --gtest_filter=<this test>\n"
                    << "  failure: " << *failure << "\n"
                    << "  counterexample (shrunk from size " << original_size << " to "
                    << size_of(value) << ", " << evals << " evals):\n  " << show(value);
      return;
    }
  }

 private:
  template <typename Prop, typename Value>
  static std::optional<std::string> run_one(Prop& prop, const Value& value) {
    try {
      return prop(value);
    } catch (const std::exception& e) {
      return std::string("exception: ") + e.what();
    }
  }

  /// Greedy bounded shrink: repeatedly adopt the first failing candidate.
  template <typename Prop, typename Value>
  void shrink(Prop& prop, Value& value, std::optional<std::string>& failure,
              std::size_t& evals) {
    bool improved = true;
    while (improved && evals < cfg_.max_shrink_evals) {
      improved = false;
      for (auto& candidate : Shrinker<Value>::candidates(value)) {
        if (++evals > cfg_.max_shrink_evals) break;
        if (auto f = run_one(prop, candidate)) {
          value = std::move(candidate);
          failure = std::move(f);
          improved = true;
          break;
        }
      }
    }
  }

  template <typename T>
  static std::size_t size_of(const std::vector<T>& v) {
    return v.size();
  }
  template <typename T>
  static std::size_t size_of(const T&) {
    return 1;
  }

  Config cfg_;
};

}  // namespace taps::test::prop

/// Declares a GoogleTest case whose body receives `prop`, a
/// taps::test::prop::Runner configured for `cases` generated inputs.
#define TAPS_PROP(suite, name, cases)                                          \
  static void TapsPropBody_##suite##_##name(::taps::test::prop::Runner& prop); \
  TEST(suite, name) {                                                          \
    ::taps::test::prop::Runner runner(cases);                                  \
    TapsPropBody_##suite##_##name(runner);                                     \
  }                                                                            \
  static void TapsPropBody_##suite##_##name(::taps::test::prop::Runner& prop)
