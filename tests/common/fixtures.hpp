// Shared test fixtures: tiny topologies and scenario builders used across
// scheduler/core tests, including the paper's worked examples (Figs. 1-3).
//
// The motivation examples use unit link capacity so flow "sizes" read
// directly as transmission-time units, exactly as in the paper's figures.
#pragma once

#include <memory>
#include <vector>

#include "exp/experiment.hpp"
#include "sim/simulator.hpp"
#include "topo/paths.hpp"

namespace taps::test {

/// Dumbbell: `side` hosts on each of two switches joined by one bottleneck
/// link; every cross flow shares exactly that link (given distinct hosts).
///
///   L0..L{side-1} - s1 ===bottleneck=== s2 - R0..R{side-1}
struct Dumbbell {
  std::unique_ptr<topo::GenericTopology> topology;
  std::vector<topo::NodeId> left;
  std::vector<topo::NodeId> right;
};

inline Dumbbell make_dumbbell(int side = 6, double capacity = 1.0) {
  topo::Graph g;
  std::vector<topo::NodeId> hosts;
  const topo::NodeId s1 = g.add_node(topo::NodeKind::kTor, "s1");
  const topo::NodeId s2 = g.add_node(topo::NodeKind::kTor, "s2");
  g.add_duplex_link(s1, s2, capacity);
  Dumbbell d;
  for (int i = 0; i < side; ++i) {
    const topo::NodeId h = g.add_node(topo::NodeKind::kHost, "L" + std::to_string(i));
    g.add_duplex_link(h, s1, capacity);
    d.left.push_back(h);
    hosts.push_back(h);
  }
  for (int i = 0; i < side; ++i) {
    const topo::NodeId h = g.add_node(topo::NodeKind::kHost, "R" + std::to_string(i));
    g.add_duplex_link(h, s2, capacity);
    d.right.push_back(h);
    hosts.push_back(h);
  }
  d.topology = std::make_unique<topo::GenericTopology>(std::move(g), std::move(hosts),
                                                       "dumbbell");
  return d;
}

/// The Fig. 3 topology: hosts 1..4, switches S1..S5, unit capacity.
/// Paths: f1: 1-S1-S5-S2-2, f2: 1-S1-S5-S4-4, f3: 3-S3-S5-S2-2,
/// f4: 3-S3-S5-S4-4 (each pair of flows shares the links the example needs).
struct Fig3Topo {
  std::unique_ptr<topo::GenericTopology> topology;
  topo::NodeId h1, h2, h3, h4;
};

inline Fig3Topo make_fig3_topology(double capacity = 1.0) {
  topo::Graph g;
  const topo::NodeId s1 = g.add_node(topo::NodeKind::kTor, "S1");
  const topo::NodeId s2 = g.add_node(topo::NodeKind::kTor, "S2");
  const topo::NodeId s3 = g.add_node(topo::NodeKind::kTor, "S3");
  const topo::NodeId s4 = g.add_node(topo::NodeKind::kTor, "S4");
  const topo::NodeId s5 = g.add_node(topo::NodeKind::kAggregation, "S5");
  Fig3Topo t;
  t.h1 = g.add_node(topo::NodeKind::kHost, "1");
  t.h2 = g.add_node(topo::NodeKind::kHost, "2");
  t.h3 = g.add_node(topo::NodeKind::kHost, "3");
  t.h4 = g.add_node(topo::NodeKind::kHost, "4");
  g.add_duplex_link(t.h1, s1, capacity);
  g.add_duplex_link(t.h2, s2, capacity);
  g.add_duplex_link(t.h3, s3, capacity);
  g.add_duplex_link(t.h4, s4, capacity);
  g.add_duplex_link(s1, s5, capacity);
  g.add_duplex_link(s2, s5, capacity);
  g.add_duplex_link(s3, s5, capacity);
  g.add_duplex_link(s4, s5, capacity);
  t.topology = std::make_unique<topo::GenericTopology>(
      std::move(g), std::vector<topo::NodeId>{t.h1, t.h2, t.h3, t.h4}, "fig3");
  return t;
}

/// Add a task with explicit (src, dst, size) flows sharing one deadline.
inline net::TaskId add_task(net::Network& net, double arrival, double deadline,
                            std::vector<net::FlowSpec> flows) {
  for (auto& f : flows) {
    f.arrival = arrival;
    f.deadline = deadline;
  }
  return net.add_task(arrival, deadline, flows);
}

inline net::FlowSpec flow(topo::NodeId src, topo::NodeId dst, double size) {
  net::FlowSpec f;
  f.src = src;
  f.dst = dst;
  f.size = size;
  return f;
}

/// Run `scheduler` over `net` to quiescence.
inline sim::SimStats run(net::Network& net, sim::Scheduler& scheduler) {
  sim::FluidSimulator simulator(net, scheduler);
  return simulator.run();
}

inline std::size_t completed_tasks(const net::Network& net) {
  std::size_t n = 0;
  for (const auto& t : net.tasks()) {
    if (t.state == net::TaskState::kCompleted) ++n;
  }
  return n;
}

inline std::size_t completed_flows(const net::Network& net) {
  std::size_t n = 0;
  for (const auto& f : net.flows()) {
    if (f.state == net::FlowState::kCompleted) ++n;
  }
  return n;
}

}  // namespace taps::test
