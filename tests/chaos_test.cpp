// Robustness sweep on random topologies: generate random connected graphs
// (not just the paper's regular trees/fat-trees), random workloads on them,
// run every scheduler, and audit the physics. Shakes out assumptions that
// regular topologies hide (asymmetric paths, odd hop counts, multiple
// bottlenecks per path).
#include <gtest/gtest.h>

#include "common/fixtures.hpp"
#include "workload/task_generator.hpp"

namespace taps {
namespace {

/// Random two-tier topology: `switches` switches connected by a random
/// spanning tree plus extra random switch-switch links (multipath), and
/// 2-4 hosts per switch. Connected by construction.
std::unique_ptr<topo::GenericTopology> random_topology(util::Rng& rng) {
  topo::Graph g;
  const int switches = static_cast<int>(rng.uniform_int(3, 7));
  std::vector<topo::NodeId> sw;
  for (int i = 0; i < switches; ++i) {
    sw.push_back(g.add_node(topo::NodeKind::kTor, "s" + std::to_string(i)));
  }
  // Spanning tree.
  for (int i = 1; i < switches; ++i) {
    const auto parent = static_cast<std::size_t>(rng.uniform_int(0, i - 1));
    g.add_duplex_link(sw[static_cast<std::size_t>(i)], sw[parent], 1e8);
  }
  // Extra links for path diversity.
  const int extras = static_cast<int>(rng.uniform_int(0, switches));
  for (int e = 0; e < extras; ++e) {
    const auto a = static_cast<std::size_t>(rng.uniform_int(0, switches - 1));
    const auto b = static_cast<std::size_t>(rng.uniform_int(0, switches - 1));
    if (a != b && g.link_between(sw[a], sw[b]) == topo::kInvalidLink) {
      g.add_duplex_link(sw[a], sw[b], 1e8);
    }
  }
  std::vector<topo::NodeId> hosts;
  for (int i = 0; i < switches; ++i) {
    const int n = static_cast<int>(rng.uniform_int(2, 4));
    for (int h = 0; h < n; ++h) {
      const auto host =
          g.add_node(topo::NodeKind::kHost, "h" + std::to_string(i) + "." + std::to_string(h));
      g.add_duplex_link(host, sw[static_cast<std::size_t>(i)], 1e8);
      hosts.push_back(host);
    }
  }
  return std::make_unique<topo::GenericTopology>(std::move(g), std::move(hosts), "random");
}

class ChaosTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosTest, AllSchedulersSurviveRandomTopologies) {
  util::Rng rng(GetParam());
  for (int round = 0; round < 4; ++round) {
    util::Rng topo_rng = rng.fork("topo" + std::to_string(round));
    const auto topology = random_topology(topo_rng);

    for (const exp::SchedulerKind kind : exp::extended_schedulers()) {
      net::Network net(*topology);
      workload::WorkloadConfig wc;
      wc.task_count = 10;
      wc.flows_per_task_mean = 5.0;
      wc.mean_flow_size = 50e3;
      wc.mean_deadline = 0.030;
      wc.arrival_rate = 500.0;
      util::Rng wl = rng.fork("wl" + std::to_string(round));
      (void)workload::generate(net, wc, wl);

      const auto sched = exp::make_scheduler(kind, 8);
      sim::FluidSimulator simulator(net, *sched);
      const sim::SimStats stats = simulator.run();
      EXPECT_GT(stats.events, 0u);

      for (const auto& f : net.flows()) {
        EXPECT_TRUE(f.finished())
            << exp::to_string(kind) << " round " << round << " flow " << f.id();
        EXPECT_NEAR(f.bytes_sent + f.remaining, f.spec.size, 1e-2) << exp::to_string(kind);
        if (f.state == net::FlowState::kCompleted) {
          EXPECT_LE(f.completion_time, f.spec.deadline + 1e-6);
        }
      }
      for (const auto& t : net.tasks()) {
        EXPECT_TRUE(t.finished()) << exp::to_string(kind);
        if (kind == exp::SchedulerKind::kTaps) {
          EXPECT_NE(t.state, net::TaskState::kFailed) << "round " << round;
        }
      }
    }
  }
}

TEST_P(ChaosTest, TapsNeverWastesOnRandomTopologies) {
  util::Rng rng(GetParam() + 5000);
  util::Rng topo_rng = rng.fork("topo");
  const auto topology = random_topology(topo_rng);
  net::Network net(*topology);
  workload::WorkloadConfig wc;
  wc.task_count = 15;
  wc.flows_per_task_mean = 6.0;
  wc.mean_flow_size = 80e3;
  wc.mean_deadline = 0.020;
  wc.arrival_rate = 800.0;
  util::Rng wl = rng.fork("wl");
  (void)workload::generate(net, wc, wl);

  const auto sched = exp::make_scheduler(exp::SchedulerKind::kTaps, 8);
  sim::FluidSimulator simulator(net, *sched);
  (void)simulator.run();
  const metrics::RunMetrics m = metrics::collect(net);
  EXPECT_DOUBLE_EQ(m.wasted_bandwidth_ratio, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTest, ::testing::Values(11u, 29u, 47u, 83u, 131u));

}  // namespace
}  // namespace taps
