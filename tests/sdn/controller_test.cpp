#include "sdn/controller.hpp"

#include <gtest/gtest.h>

#include "common/fixtures.hpp"
#include "topo/partial_fattree.hpp"

namespace taps::sdn {
namespace {

using test::add_task;
using test::flow;

struct ControllerFixture : public ::testing::Test {
  topo::PartialFatTree topology;
  net::Network net{topology};

  ProbePacket probe_for(net::TaskId tid, double at) {
    ProbePacket p;
    p.task = tid;
    p.sent_at = at;
    for (const net::FlowId fid : net.task(tid).spec.flows) {
      const auto& f = net.flow(fid);
      p.flows.push_back(
          SchedulingHeader{fid, tid, f.spec.src, f.spec.dst, f.spec.size, f.spec.deadline});
    }
    return p;
  }
};

TEST_F(ControllerFixture, AcceptedProbeYieldsGrantsAndEntries) {
  const auto& hosts = topology.hosts();
  const net::TaskId t0 =
      add_task(net, 0.0, 1.0, {flow(hosts[0], hosts[4], 1e6)});  // cross-pod
  Controller controller(net, ControllerConfig{});

  const ScheduleReply reply = controller.on_probe(probe_for(t0, 0.0), 0.0);
  ASSERT_TRUE(reply.accepted);
  ASSERT_EQ(reply.grants.size(), 1u);
  const SliceGrant& g = reply.grants[0];
  EXPECT_EQ(g.flow, 0);
  EXPECT_FALSE(g.slices.empty());
  EXPECT_GT(g.rate, 0.0);
  EXPECT_TRUE(topo::is_valid_path(net.graph(), g.path, hosts[0], hosts[4]));
  // Cross-pod path: 6 hops, 5 of them leave a switch -> 5 entries.
  EXPECT_EQ(controller.entries_installed(), 5u);
}

TEST_F(ControllerFixture, RejectedProbeInstallsNothing) {
  const auto& hosts = topology.hosts();
  // 10 ms deadline but ~100 ms of data on a 1 Gbps path: infeasible.
  const net::TaskId t0 = add_task(net, 0.0, 0.010, {flow(hosts[0], hosts[4], 12.5e6)});
  Controller controller(net, ControllerConfig{});
  const ScheduleReply reply = controller.on_probe(probe_for(t0, 0.0), 0.0);
  EXPECT_FALSE(reply.accepted);
  EXPECT_TRUE(reply.grants.empty());
  EXPECT_EQ(controller.entries_installed(), 0u);
  EXPECT_EQ(net.task(t0).state, net::TaskState::kRejected);
}

TEST_F(ControllerFixture, TermWithdrawsEntries) {
  const auto& hosts = topology.hosts();
  const net::TaskId t0 = add_task(net, 0.0, 1.0, {flow(hosts[0], hosts[4], 1e6)});
  Controller controller(net, ControllerConfig{});
  (void)controller.on_probe(probe_for(t0, 0.0), 0.0);
  ASSERT_EQ(controller.entries_installed(), 5u);

  // Simulate the sender finishing the flow.
  net.flows()[0].remaining = 0.0;
  net.on_flow_completed(0, 0.01);
  controller.on_term(TermPacket{0, 0.01});
  EXPECT_EQ(controller.entries_withdrawn(), 5u);

  // Every switch table is empty again.
  for (const auto& node : topology.graph().nodes()) {
    if (Switch* sw = controller.switch_at(node.id)) {
      EXPECT_EQ(sw->table().size(), 0u);
    }
  }
}

TEST_F(ControllerFixture, SecondTaskGetsUpdatesForFirst) {
  const auto& hosts = topology.hosts();
  const net::TaskId t0 = add_task(net, 0.0, 1.0, {flow(hosts[0], hosts[4], 1e6)});
  const net::TaskId t1 = add_task(net, 0.0, 0.5, {flow(hosts[1], hosts[5], 1e6)});
  Controller controller(net, ControllerConfig{});
  (void)controller.on_probe(probe_for(t0, 0.0), 0.0);
  const ScheduleReply r1 = controller.on_probe(probe_for(t1, 0.0), 0.0);
  ASSERT_TRUE(r1.accepted);
  // Grants for the new task's flow plus a refreshed grant for task 0's flow.
  EXPECT_EQ(r1.grants.size(), 2u);
}

TEST_F(ControllerFixture, GatherWindowBatchesFlowProbes) {
  const auto& hosts = topology.hosts();
  const net::TaskId t0 = add_task(net, 0.0, 1.0,
                                  {flow(hosts[0], hosts[4], 1e6), flow(hosts[1], hosts[5], 1e6)});
  ControllerConfig cc;
  cc.gather_window = 0.005;  // 5 ms: Algorithm 1's wait time T
  Controller controller(net, cc);

  // Flows of the task are probed 1 ms apart; nothing is decided until the
  // first probe's window expires.
  const auto& f0 = net.flow(net.task(t0).spec.flows[0]);
  const auto& f1 = net.flow(net.task(t0).spec.flows[1]);
  controller.on_flow_probe(
      SchedulingHeader{f0.id(), t0, f0.spec.src, f0.spec.dst, f0.spec.size, f0.spec.deadline},
      0.000);
  EXPECT_DOUBLE_EQ(controller.next_flush_time(), 0.005);
  controller.on_flow_probe(
      SchedulingHeader{f1.id(), t0, f1.spec.src, f1.spec.dst, f1.spec.size, f1.spec.deadline},
      0.001);
  EXPECT_DOUBLE_EQ(controller.next_flush_time(), 0.005);  // window from 1st probe

  EXPECT_TRUE(controller.flush(0.004).empty());  // too early
  const auto replies = controller.flush(0.005);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_TRUE(replies[0].accepted);
  EXPECT_EQ(replies[0].grants.size(), 2u);  // one batch decision for both flows
  EXPECT_TRUE(std::isinf(controller.next_flush_time()));
}

TEST_F(ControllerFixture, GatherWindowZeroFlushesImmediately) {
  const auto& hosts = topology.hosts();
  const net::TaskId t0 = add_task(net, 0.0, 1.0, {flow(hosts[0], hosts[4], 1e6)});
  Controller controller(net, ControllerConfig{});  // window 0
  const auto& f0 = net.flow(net.task(t0).spec.flows[0]);
  controller.on_flow_probe(
      SchedulingHeader{f0.id(), t0, f0.spec.src, f0.spec.dst, f0.spec.size, f0.spec.deadline},
      0.0);
  const auto replies = controller.flush(0.0);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_TRUE(replies[0].accepted);
}

TEST_F(ControllerFixture, SwitchesExistForAllNonHostNodes) {
  Controller controller(net, ControllerConfig{});
  std::size_t switches = 0;
  for (const auto& node : topology.graph().nodes()) {
    if (controller.switch_at(node.id) != nullptr) {
      EXPECT_NE(node.kind, topo::NodeKind::kHost);
      ++switches;
    } else {
      EXPECT_EQ(node.kind, topo::NodeKind::kHost);
    }
  }
  EXPECT_EQ(switches, 10u);  // 2 cores + 4 aggs + 4 edges
}

}  // namespace
}  // namespace taps::sdn
