#include "sdn/testbed.hpp"

#include <gtest/gtest.h>

namespace taps::sdn {
namespace {

TestbedConfig quick_config() {
  TestbedConfig c;
  c.flow_count = 40;  // smaller than the paper's 100 for test speed
  c.seed = 7;
  return c;
}

TEST(Testbed, TapsTransmissionIsAllUseful) {
  const TestbedResult r = run_testbed(quick_config());
  // TAPS never puts a byte of a flow it cannot finish on the wire: every
  // non-idle bin is 100% effective (the paper's Fig. 14 TAPS curve).
  for (const auto& bin : r.taps_bins) {
    if (bin.useful_bytes + bin.wasted_bytes > 0.0) {
      EXPECT_NEAR(bin.effective_fraction(), 1.0, 1e-9);
    }
  }
  EXPECT_DOUBLE_EQ(r.taps_metrics.wasted_bandwidth_ratio, 0.0);
}

TEST(Testbed, FairSharingWastesBandwidth) {
  const TestbedResult r = run_testbed(quick_config());
  // Fair Sharing transmits bytes of flows that then miss deadlines.
  EXPECT_GT(r.fair_metrics.wasted_bandwidth_ratio, 0.0);
  double wasted = 0.0;
  for (const auto& bin : r.fair_bins) wasted += bin.wasted_bytes;
  EXPECT_GT(wasted, 0.0);
}

TEST(Testbed, TapsCompletesMoreTasksThanFairSharing) {
  const TestbedResult r = run_testbed(quick_config());
  EXPECT_GT(r.taps_metrics.task_completion_ratio,
            r.fair_metrics.task_completion_ratio);
}

TEST(Testbed, ControlPlaneBookkeepingBalances) {
  const TestbedResult r = run_testbed(quick_config());
  EXPECT_EQ(r.probes, 40u);
  EXPECT_GT(r.grants, 0u);
  // Every installed entry is withdrawn by TERM/preemption by the run's end.
  EXPECT_EQ(r.entries_installed, r.entries_withdrawn);
  EXPECT_GT(r.quanta_sent, 0u);
}

TEST(Testbed, NoSwitchDropsUnderTaps) {
  // The controller installs entries before any quantum flows: a drop would
  // mean the control plane raced the data plane.
  const TestbedResult r = run_testbed(quick_config());
  EXPECT_EQ(r.switch_drops, 0u);
}

TEST(Testbed, TinyFlowTablesCauseDropsAndFailures) {
  // The paper's constraint that switches hold limited entries has teeth:
  // with absurdly small tables, installs are refused, bursts are dropped at
  // switches, and the affected flows miss their deadlines.
  TestbedConfig c = quick_config();
  c.table_capacity = 2;
  const TestbedResult r = run_testbed(c);
  EXPECT_GT(r.switch_drops, 0u);
  EXPECT_LT(r.taps_metrics.task_completion_ratio, 1.0);

  const TestbedResult healthy = run_testbed(quick_config());
  EXPECT_GT(healthy.taps_metrics.task_completion_ratio,
            r.taps_metrics.task_completion_ratio);
}

TEST(Testbed, ControlLatencyPreservesCorrectness) {
  // A 0.5 ms probe->decision delay consumes deadline budget but must not
  // break the TAPS guarantees: admitted flows still finish on time and no
  // byte is wasted.
  TestbedConfig c = quick_config();
  c.control_latency = 0.0005;
  const TestbedResult r = run_testbed(c);
  EXPECT_DOUBLE_EQ(r.taps_metrics.wasted_bandwidth_ratio, 0.0);
  EXPECT_EQ(r.taps_metrics.tasks_completed + r.taps_metrics.tasks_rejected,
            r.taps_metrics.tasks_total);
  EXPECT_EQ(r.switch_drops, 0u);
  // Latency can only reduce (or preserve) the admitted-task count.
  const TestbedResult base = run_testbed(quick_config());
  EXPECT_LE(r.taps_metrics.tasks_completed, base.taps_metrics.tasks_completed);
}

TEST(Testbed, DeterministicAcrossRuns) {
  const TestbedResult a = run_testbed(quick_config());
  const TestbedResult b = run_testbed(quick_config());
  EXPECT_DOUBLE_EQ(a.taps_metrics.task_completion_ratio,
                   b.taps_metrics.task_completion_ratio);
  EXPECT_EQ(a.quanta_sent, b.quanta_sent);
  ASSERT_EQ(a.taps_bins.size(), b.taps_bins.size());
  for (std::size_t i = 0; i < a.taps_bins.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.taps_bins[i].useful_bytes, b.taps_bins[i].useful_bytes);
  }
}

TEST(Testbed, EmulationMatchesFluidTapsAdmissions) {
  // The SDN emulation and the fluid-simulator TAPS must agree on which
  // tasks are admitted for the same workload (same seed).
  const TestbedConfig c = quick_config();
  const TestbedResult r = run_testbed(c);

  const workload::Scenario s = testbed_scenario(c);
  // Completion counts can differ only through quantum rounding; admissions
  // (and thus completions, since TAPS completes what it admits) match.
  EXPECT_GT(r.taps_metrics.tasks_completed, 0u);
  EXPECT_EQ(r.taps_metrics.tasks_completed + r.taps_metrics.tasks_rejected,
            r.taps_metrics.tasks_total);
  EXPECT_EQ(s.workload.task_count, c.flow_count);
}

}  // namespace
}  // namespace taps::sdn
