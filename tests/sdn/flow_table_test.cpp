#include "sdn/flow_table.hpp"

#include <gtest/gtest.h>

namespace taps::sdn {
namespace {

TEST(FlowTable, InstallAndLookup) {
  FlowTable t(4);
  EXPECT_TRUE(t.install(1, 10));
  EXPECT_TRUE(t.install(2, 20));
  EXPECT_EQ(t.lookup(1), std::optional<topo::LinkId>(10));
  EXPECT_EQ(t.lookup(2), std::optional<topo::LinkId>(20));
  EXPECT_FALSE(t.lookup(3).has_value());
  EXPECT_EQ(t.size(), 2u);
}

TEST(FlowTable, ReinstallUpdatesWithoutGrowth) {
  FlowTable t(2);
  EXPECT_TRUE(t.install(1, 10));
  EXPECT_TRUE(t.install(1, 11));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.lookup(1), std::optional<topo::LinkId>(11));
}

TEST(FlowTable, CapacityEnforced) {
  FlowTable t(2);
  EXPECT_TRUE(t.install(1, 10));
  EXPECT_TRUE(t.install(2, 20));
  EXPECT_FALSE(t.install(3, 30));  // full
  EXPECT_EQ(t.refused_installs(), 1u);
  EXPECT_EQ(t.size(), 2u);
  // Updating an existing entry still works at capacity.
  EXPECT_TRUE(t.install(2, 21));
}

TEST(FlowTable, RemoveFreesSlot) {
  FlowTable t(1);
  EXPECT_TRUE(t.install(1, 10));
  EXPECT_FALSE(t.install(2, 20));
  EXPECT_TRUE(t.remove(1));
  EXPECT_FALSE(t.remove(1));  // already gone
  EXPECT_TRUE(t.install(2, 20));
}

TEST(FlowTable, PeakTracksHighWaterMark) {
  FlowTable t(8);
  t.install(1, 1);
  t.install(2, 2);
  t.install(3, 3);
  t.remove(1);
  t.remove(2);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.peak_size(), 3u);
}

TEST(FlowTable, DefaultCapacityIsPaperLimit) {
  const FlowTable t;
  EXPECT_EQ(t.capacity(), 1000u);  // "only the first 1k entries are installed"
}

}  // namespace
}  // namespace taps::sdn
