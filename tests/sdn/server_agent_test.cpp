#include "sdn/server_agent.hpp"

#include <gtest/gtest.h>

#include "common/fixtures.hpp"
#include "topo/partial_fattree.hpp"

namespace taps::sdn {
namespace {

using test::add_task;
using test::flow;

struct AgentFixture : public ::testing::Test {
  topo::PartialFatTree topology;
  net::Network net{topology};
  Controller controller{net, ControllerConfig{}};
  metrics::SegmentRecorder recorder;
  sim::EventQueue queue;

  ServerAgent make_agent(topo::NodeId host, double quantum = 12500.0) {
    ServerAgent::Env env;
    env.queue = &queue;
    env.net = &net;
    env.controller = &controller;
    env.recorder = &recorder;
    env.quantum = quantum;
    return ServerAgent(host, env);
  }

  ScheduleReply probe_task(net::TaskId tid, double now) {
    ProbePacket p;
    p.task = tid;
    p.sent_at = now;
    for (const net::FlowId fid : net.task(tid).spec.flows) {
      const auto& f = net.flow(fid);
      p.flows.push_back(
          SchedulingHeader{fid, tid, f.spec.src, f.spec.dst, f.spec.size, f.spec.deadline});
    }
    return controller.on_probe(p, now);
  }
};

TEST_F(AgentFixture, TransmitsGrantedFlowToCompletion) {
  const auto& hosts = topology.hosts();
  const net::TaskId t0 = add_task(net, 0.0, 0.050, {flow(hosts[0], hosts[4], 100e3)});
  const ScheduleReply reply = probe_task(t0, 0.0);
  ASSERT_TRUE(reply.accepted);

  ServerAgent agent = make_agent(hosts[0]);
  agent.on_grant(reply.grants[0]);
  while (!queue.empty()) queue.run_next();

  EXPECT_EQ(net.flow(0).state, net::FlowState::kCompleted);
  EXPECT_NEAR(net.flow(0).bytes_sent, 100e3, 1.0);
  EXPECT_LE(net.flow(0).completion_time, net.flow(0).spec.deadline + 1e-9);
  EXPECT_EQ(agent.flows_completed(), 1u);
  // 100 KB in 12.5 KB quanta = 8 bursts.
  EXPECT_EQ(agent.quanta_sent(), 8u);
  // TERM withdrew the route.
  EXPECT_EQ(controller.entries_installed(), controller.entries_withdrawn());
}

TEST_F(AgentFixture, QuantaRespectSliceBoundaries) {
  const auto& hosts = topology.hosts();
  // Two flows from DIFFERENT hosts sharing the same edge uplink: the second
  // gets slices after the first; its agent must idle until its slice starts.
  const net::TaskId t0 = add_task(net, 0.0, 0.050, {flow(hosts[0], hosts[4], 125e3)});
  const net::TaskId t1 = add_task(net, 0.0, 0.050, {flow(hosts[0], hosts[5], 125e3)});
  const ScheduleReply r0 = probe_task(t0, 0.0);
  const ScheduleReply r1 = probe_task(t1, 0.0);
  ASSERT_TRUE(r0.accepted);
  ASSERT_TRUE(r1.accepted);

  ServerAgent agent = make_agent(hosts[0]);
  for (const auto& g : r1.grants) agent.on_grant(g);
  while (!queue.empty()) queue.run_next();

  // Both flows leave host 0, so their slices on the host uplink are
  // disjoint; the recorder segments must therefore not overlap either.
  const auto bins = recorder.bins(net, 1e-4);
  for (const auto& b : bins) {
    EXPECT_LE(b.useful_bytes + b.wasted_bytes, 1e-4 * topo::kGigabitPerSecond + 1.0);
  }
}

TEST_F(AgentFixture, CancelStopsTransmission) {
  const auto& hosts = topology.hosts();
  const net::TaskId t0 = add_task(net, 0.0, 0.050, {flow(hosts[0], hosts[4], 100e3)});
  const ScheduleReply reply = probe_task(t0, 0.0);
  ServerAgent agent = make_agent(hosts[0]);
  agent.on_grant(reply.grants[0]);
  agent.cancel(0);
  while (!queue.empty()) queue.run_next();
  EXPECT_DOUBLE_EQ(net.flow(0).bytes_sent, 0.0);
  EXPECT_EQ(agent.quanta_sent(), 0u);
}

TEST_F(AgentFixture, RegrantReplacesSchedule) {
  const auto& hosts = topology.hosts();
  const net::TaskId t0 = add_task(net, 0.0, 0.050, {flow(hosts[0], hosts[4], 100e3)});
  const ScheduleReply reply = probe_task(t0, 0.0);
  ServerAgent agent = make_agent(hosts[0]);
  agent.on_grant(reply.grants[0]);
  // Refreshed grant with shifted slices (as after a controller re-plan).
  SliceGrant shifted = reply.grants[0];
  util::IntervalSet moved;
  for (const auto& iv : shifted.slices.intervals()) {
    moved.insert(iv.lo + 0.010, iv.hi + 0.010);
  }
  shifted.slices = moved;
  agent.on_grant(shifted);
  while (!queue.empty()) queue.run_next();

  EXPECT_EQ(net.flow(0).state, net::FlowState::kCompleted);
  // Completion follows the *new* schedule: not before its first slice ends.
  EXPECT_GE(net.flow(0).completion_time, 0.010);
}

TEST_F(AgentFixture, SmallQuantumStillExact) {
  const auto& hosts = topology.hosts();
  const net::TaskId t0 = add_task(net, 0.0, 0.050, {flow(hosts[0], hosts[4], 10e3)});
  const ScheduleReply reply = probe_task(t0, 0.0);
  ServerAgent agent = make_agent(hosts[0], /*quantum=*/1500.0);
  agent.on_grant(reply.grants[0]);
  while (!queue.empty()) queue.run_next();
  EXPECT_EQ(net.flow(0).state, net::FlowState::kCompleted);
  EXPECT_NEAR(net.flow(0).bytes_sent, 10e3, 1e-6);
  EXPECT_EQ(agent.quanta_sent(), 7u);  // ceil(10000/1500)
}

}  // namespace
}  // namespace taps::sdn
