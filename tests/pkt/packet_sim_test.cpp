#include "pkt/packet_sim.hpp"

#include <gtest/gtest.h>

#include "common/fixtures.hpp"
#include "core/taps_scheduler.hpp"
#include "sched/fair_sharing.hpp"
#include "workload/task_generator.hpp"

namespace taps::pkt {
namespace {

using test::add_task;
using test::flow;
using test::make_dumbbell;

// Capacity 1.25e5 B/s so a 1500 B packet takes 12 ms — packetization effects
// are visible at test scale.
constexpr double kCap = 1.25e5;

struct PktFixture {
  test::Dumbbell d = test::make_dumbbell(6, kCap);
  net::Network net{*d.topology};
};

TEST(PacketSim, SingleFlowDeliversAllBytes) {
  PktFixture s;
  add_task(s.net, 0.0, 10.0, {flow(s.d.left[0], s.d.right[0], 15000.0)});  // 10 packets
  sched::FairSharing sched;
  PacketSimulator sim(s.net, sched);
  const PacketSimStats stats = sim.run();

  EXPECT_EQ(s.net.flows()[0].state, net::FlowState::kCompleted);
  // 10 packets, 3 hops, paced at full rate: first packet delivered after
  // 3 serializations, the rest pipeline: total = (10 + 2) * 12 ms.
  EXPECT_NEAR(s.net.flows()[0].completion_time, 12.0 * 0.012, 1e-6);
  EXPECT_EQ(stats.packets_delivered, 10u);  // counted at final delivery
  EXPECT_EQ(stats.completions, 1u);
}

TEST(PacketSim, PartialLastPacket) {
  PktFixture s;
  add_task(s.net, 0.0, 10.0, {flow(s.d.left[0], s.d.right[0], 2000.0)});  // 1500 + 500
  sched::FairSharing sched;
  PacketSimulator sim(s.net, sched);
  (void)sim.run();
  EXPECT_EQ(s.net.flows()[0].state, net::FlowState::kCompleted);
  EXPECT_NEAR(s.net.flows()[0].bytes_sent, 2000.0, 1e-9);
}

TEST(PacketSim, DeadlineMissStopsEmission) {
  PktFixture s;
  // 100 packets needed, deadline allows ~8.
  add_task(s.net, 0.0, 0.1, {flow(s.d.left[0], s.d.right[0], 150000.0)});
  sched::FairSharing sched;
  PacketSimulator sim(s.net, sched);
  const PacketSimStats stats = sim.run();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(s.net.flows()[0].state, net::FlowState::kMissed);
  EXPECT_LT(s.net.flows()[0].bytes_sent, 150000.0);
  EXPECT_GT(s.net.flows()[0].bytes_sent, 0.0);
}

TEST(PacketSim, FairSharingHalvesRatesUnderContention) {
  PktFixture s;
  add_task(s.net, 0.0, 100.0, {flow(s.d.left[0], s.d.right[0], 15000.0)});
  add_task(s.net, 0.0, 100.0, {flow(s.d.left[1], s.d.right[1], 15000.0)});
  sched::FairSharing sched;
  PacketSimulator sim(s.net, sched);
  (void)sim.run();
  // Both complete; sharing the bottleneck means each takes ~2x the solo time
  // (10 packets at half rate ~ 0.24 s + pipeline).
  for (const auto& f : s.net.flows()) {
    ASSERT_EQ(f.state, net::FlowState::kCompleted);
    EXPECT_GT(f.completion_time, 0.20);
    EXPECT_LT(f.completion_time, 0.32);
  }
}

TEST(PacketSim, TapsSlicesSerializeFlows) {
  PktFixture s;
  add_task(s.net, 0.0, 1.0, {flow(s.d.left[0], s.d.right[0], 15000.0)});
  add_task(s.net, 0.0, 1.0, {flow(s.d.left[1], s.d.right[1], 15000.0)});
  core::TapsScheduler sched;
  PacketSimulator sim(s.net, sched);
  (void)sim.run();
  ASSERT_EQ(s.net.tasks()[0].state, net::TaskState::kCompleted);
  ASSERT_EQ(s.net.tasks()[1].state, net::TaskState::kCompleted);
  // Exclusive slices: the second flow finishes roughly one slice later.
  const double t0 = s.net.flows()[0].completion_time;
  const double t1 = s.net.flows()[1].completion_time;
  EXPECT_GT(std::abs(t1 - t0), 0.08);  // ~a 0.12 s slice apart
}

TEST(PacketSim, QueueDepthBoundedWhenPaced) {
  PktFixture s;
  add_task(s.net, 0.0, 100.0, {flow(s.d.left[0], s.d.right[0], 75000.0)});
  add_task(s.net, 0.0, 100.0, {flow(s.d.left[1], s.d.right[1], 75000.0)});
  sched::FairSharing sched;
  PacketSimulator sim(s.net, sched);
  const PacketSimStats stats = sim.run();
  // Senders are paced at the assigned (feasible) rates, so queues stay at
  // transient depth, not O(flow size).
  EXPECT_LE(stats.max_queue_depth, 6u);
}

// The headline validation: fluid and packet engines agree on who completes.
class FluidVsPacket : public ::testing::TestWithParam<exp::SchedulerKind> {};

TEST_P(FluidVsPacket, CompletionSetsNearlyAgree) {
  const auto kind = GetParam();
  workload::Scenario scenario = workload::Scenario::single_rooted(false);
  scenario.workload.task_count = 15;
  scenario.workload.flows_per_task_mean = 6.0;
  scenario.seed = 99;

  const auto topology = workload::make_topology(scenario);

  auto run_with = [&](bool packet) {
    net::Network net(*topology);
    util::Rng rng(scenario.seed);
    util::Rng wl = rng.fork("workload");
    (void)workload::generate(net, scenario.workload, wl);
    const auto sched = exp::make_scheduler(kind, scenario.max_paths);
    if (packet) {
      PacketSimulator sim(net, *sched);
      (void)sim.run();
    } else {
      sim::FluidSimulator sim(net, *sched);
      (void)sim.run();
    }
    return metrics::collect(net);
  };

  const metrics::RunMetrics fluid = run_with(false);
  const metrics::RunMetrics packet = run_with(true);

  // Packetization (store-and-forward latency, MTU rounding) may flip tasks
  // whose flows finish within a hair of the deadline; everything else must
  // agree. Allow 3 tasks of 15 to differ.
  EXPECT_NEAR(packet.task_completion_ratio, fluid.task_completion_ratio, 3.0 / 15.0)
      << exp::to_string(kind);
  EXPECT_NEAR(packet.flow_completion_ratio, fluid.flow_completion_ratio, 0.15)
      << exp::to_string(kind);
}

INSTANTIATE_TEST_SUITE_P(Schedulers, FluidVsPacket,
                         ::testing::Values(exp::SchedulerKind::kFairSharing,
                                           exp::SchedulerKind::kD3,
                                           exp::SchedulerKind::kPdq,
                                           exp::SchedulerKind::kBaraat,
                                           exp::SchedulerKind::kVarys,
                                           exp::SchedulerKind::kTaps),
                         [](const auto& pinfo) {
                           return std::string(exp::to_string(pinfo.param));
                         });

}  // namespace
}  // namespace taps::pkt
