// Cross-validation of the two simulation substrates: the fluid engine
// (sim::FluidSimulator) and the packet engine (pkt::PacketSimulator) run the
// SAME seeded scenario with the SAME scheduler object type and must agree
// task by task — not just on aggregate ratios (that is covered by
// packet_sim_test) but on every task's accept/complete outcome, and on
// completion times up to packetization effects.
//
// Time-skew budget, derived from the store-and-forward model:
//   * every delivered flow pays one pipeline fill: (hops) serializations of
//     the final packet, hops = 3 on the dumbbell, mtu/kCap = 12 ms each;
//   * transient FIFO queueing when slices/shares hand over: a couple of
//     in-flight packets, <= 2 serializations;
//   * rate refreshes trigger on *delivery* (not fluid completion), so every
//     earlier completion can delay later flows by up to one more pipeline.
// Hence flow #r (in fluid completion order) may lag by
//   kPipeline + 2*kSer + r*kPipeline
// and the first completing flow must agree within a single store-and-forward
// pipeline — the "one packet serialization time" bound of the plan.
#include "pkt/packet_sim.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/fixtures.hpp"
#include "core/taps_scheduler.hpp"
#include "sched/fair_sharing.hpp"
#include "util/rng.hpp"

namespace taps::pkt {
namespace {

constexpr double kCap = 1.25e5;       // bytes/s: 1500 B packet = 12 ms
constexpr double kMtu = 1500.0;
constexpr double kSer = kMtu / kCap;  // one link serialization
constexpr int kHops = 3;              // host - s1 - s2 - host
constexpr double kPipeline = kHops * kSer;

struct TaskSpec {
  double arrival = 0.0;
  double deadline = 0.0;
  std::vector<std::pair<int, double>> flows;  // (host-pair index, bytes)
};

/// Seeded scenario: staggered tasks with whole-packet sizes and loose
/// deadlines (so admission never hinges on a 36 ms skew), plus one grossly
/// infeasible task that FairSharing must fail and TAPS must reject — in BOTH
/// engines.
std::vector<TaskSpec> build_scenario(std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<TaskSpec> specs;
  int next_pair = 0;
  for (int i = 0; i < 6; ++i) {
    TaskSpec t;
    t.arrival = 0.12 * i + rng.uniform_real(0.0, 0.03);
    // Deadlines loose AND increasing in arrival order: EDF order equals
    // arrival order, so TAPS replans never reorder already-planned slices.
    // (A reorder makes completion times legitimately diverge between the
    // engines, because replan instants differ by in-flight pipeline lag —
    // the per-task *outcomes* still agree, but time comparison would be
    // meaningless.)
    t.deadline = t.arrival + 2.0 + 0.3 * i + rng.uniform_real(0.0, 0.1);
    const int flows = static_cast<int>(rng.uniform_int(1, 2));
    for (int f = 0; f < flows; ++f) {
      const double bytes = 1500.0 * static_cast<double>(rng.uniform_int(4, 16));
      t.flows.emplace_back(next_pair++, bytes);
    }
    specs.push_back(std::move(t));
  }
  // 100 packets needed in 0.1 s: ~8 fit. Hopeless for any scheduler.
  TaskSpec doomed;
  doomed.arrival = 0.05;
  doomed.deadline = doomed.arrival + 0.1;
  doomed.flows.emplace_back(next_pair++, 150000.0);
  specs.push_back(std::move(doomed));
  return specs;
}

struct Outcome {
  std::vector<net::TaskState> task_states;
  std::vector<net::FlowState> flow_states;
  std::vector<double> flow_completion;  // kInfinity when not completed
};

template <typename SchedulerT>
Outcome run_engine(const std::vector<TaskSpec>& specs, bool packet) {
  test::Dumbbell d = test::make_dumbbell(16, kCap);
  net::Network net(*d.topology);
  for (const TaskSpec& t : specs) {
    std::vector<net::FlowSpec> flows;
    for (const auto& [pair, bytes] : t.flows) {
      flows.push_back(test::flow(d.left[pair], d.right[pair], bytes));
    }
    test::add_task(net, t.arrival, t.deadline, std::move(flows));
  }

  SchedulerT scheduler;
  if (packet) {
    PacketSimulator sim(net, scheduler);
    (void)sim.run();
  } else {
    sim::FluidSimulator sim(net, scheduler);
    (void)sim.run();
  }

  Outcome out;
  for (const auto& t : net.tasks()) out.task_states.push_back(t.state);
  for (const auto& f : net.flows()) {
    out.flow_states.push_back(f.state);
    out.flow_completion.push_back(f.state == net::FlowState::kCompleted
                                      ? f.completion_time
                                      : sim::kInfinity);
  }
  return out;
}

template <typename SchedulerT>
void cross_validate(const char* label, std::uint64_t seed) {
  const std::vector<TaskSpec> specs = build_scenario(seed);
  const Outcome fluid = run_engine<SchedulerT>(specs, /*packet=*/false);
  const Outcome packet = run_engine<SchedulerT>(specs, /*packet=*/true);

  ASSERT_EQ(fluid.task_states.size(), packet.task_states.size());
  ASSERT_EQ(fluid.flow_states.size(), packet.flow_states.size());

  // Per-task accept/complete outcomes agree exactly.
  for (std::size_t i = 0; i < fluid.task_states.size(); ++i) {
    EXPECT_EQ(fluid.task_states[i], packet.task_states[i])
        << label << ": task " << i << " fluid=" << net::to_string(fluid.task_states[i])
        << " packet=" << net::to_string(packet.task_states[i]);
  }
  for (std::size_t i = 0; i < fluid.flow_states.size(); ++i) {
    EXPECT_EQ(fluid.flow_states[i], packet.flow_states[i])
        << label << ": flow " << i << " fluid=" << net::to_string(fluid.flow_states[i])
        << " packet=" << net::to_string(packet.flow_states[i]);
  }

  // The doomed task is the whole point of including it: verify the expected
  // terminal state showed up at all (rejected by TAPS, failed by deadline
  // schedulers without admission control — either way, NOT completed).
  const std::size_t doomed = fluid.task_states.size() - 1;
  EXPECT_NE(fluid.task_states[doomed], net::TaskState::kCompleted) << label;

  // Completion-time skew, budgeted per fluid completion rank (see header).
  std::vector<std::size_t> completed;
  for (std::size_t i = 0; i < fluid.flow_states.size(); ++i) {
    if (fluid.flow_states[i] == net::FlowState::kCompleted &&
        packet.flow_states[i] == net::FlowState::kCompleted) {
      completed.push_back(i);
    }
  }
  ASSERT_GT(completed.size(), 4u) << label << ": scenario too easy to be informative";
  std::sort(completed.begin(), completed.end(), [&](std::size_t a, std::size_t b) {
    return fluid.flow_completion[a] < fluid.flow_completion[b];
  });
  for (std::size_t rank = 0; rank < completed.size(); ++rank) {
    const std::size_t i = completed[rank];
    const double skew =
        std::abs(packet.flow_completion[i] - fluid.flow_completion[i]);
    const double budget =
        kPipeline + 2.0 * kSer + static_cast<double>(rank) * kPipeline + 1e-3;
    EXPECT_LE(skew, budget)
        << label << ": flow " << i << " (rank " << rank << ") fluid="
        << fluid.flow_completion[i] << " packet=" << packet.flow_completion[i];
  }
}

TEST(FluidVsPacketCrossValidation, FairSharingAgreesPerTask) {
  cross_validate<sched::FairSharing>("FairSharing", 0xf1u);
}

TEST(FluidVsPacketCrossValidation, TapsAgreesPerTask) {
  cross_validate<core::TapsScheduler>("TAPS", 0xf1u);
}

// A second seed guards against the first one being accidentally benign.
TEST(FluidVsPacketCrossValidation, FairSharingAgreesPerTaskSeed2) {
  cross_validate<sched::FairSharing>("FairSharing", 0xf2u);
}

TEST(FluidVsPacketCrossValidation, TapsAgreesPerTaskSeed2) {
  cross_validate<core::TapsScheduler>("TAPS", 0xf2u);
}

}  // namespace
}  // namespace taps::pkt
