// Property-based differential test: random IntervalSet operation sequences
// checked, op by op, against a naive boolean-grid reference model.
//
// All endpoints live on a dyadic grid (multiples of 0.25), so every value
// the IntervalSet can produce — endpoints, measures, allocation cuts — is
// exactly representable and the comparison is exact, not tolerance-based.
// Failures shrink to a minimal failing op sequence and print the seed
// (see tests/common/prop.hpp and docs/TESTING.md).
#include <gtest/gtest.h>

#include <array>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/prop.hpp"
#include "util/interval_set.hpp"

namespace taps::util {
namespace {

constexpr double kCell = 0.25;
constexpr int kCells = 64;
constexpr double kHorizon = kCells * kCell;  // 16.0

/// Reference model: one bool per grid cell [c*kCell, (c+1)*kCell).
using Ref = std::array<bool, kCells>;

struct Op {
  enum class Kind { kInsertA, kEraseA, kInsertB, kEraseB, kTrimA };
  Kind kind = Kind::kInsertA;
  int lo = 0;  // grid index
  int hi = 0;  // grid index, >= lo (ignored by kTrimA)
};

std::ostream& operator<<(std::ostream& os, const Op& op) {
  switch (op.kind) {
    case Op::Kind::kInsertA: os << "A.insert"; break;
    case Op::Kind::kEraseA: os << "A.erase"; break;
    case Op::Kind::kInsertB: os << "B.insert"; break;
    case Op::Kind::kEraseB: os << "B.erase"; break;
    case Op::Kind::kTrimA: return os << "A.trim_before(" << op.lo * kCell << ")";
  }
  return os << "(" << op.lo * kCell << ", " << op.hi * kCell << ")";
}

void apply(const Op& op, IntervalSet& a, IntervalSet& b, Ref& ra, Ref& rb) {
  const double lo = op.lo * kCell;
  const double hi = op.hi * kCell;
  switch (op.kind) {
    case Op::Kind::kInsertA:
      a.insert(lo, hi);
      for (int c = op.lo; c < op.hi; ++c) ra[static_cast<std::size_t>(c)] = true;
      break;
    case Op::Kind::kEraseA:
      a.erase(lo, hi);
      for (int c = op.lo; c < op.hi; ++c) ra[static_cast<std::size_t>(c)] = false;
      break;
    case Op::Kind::kInsertB:
      b.insert(lo, hi);
      for (int c = op.lo; c < op.hi; ++c) rb[static_cast<std::size_t>(c)] = true;
      break;
    case Op::Kind::kEraseB:
      b.erase(lo, hi);
      for (int c = op.lo; c < op.hi; ++c) rb[static_cast<std::size_t>(c)] = false;
      break;
    case Op::Kind::kTrimA:
      a.trim_before(lo);
      for (int c = 0; c < op.lo; ++c) ra[static_cast<std::size_t>(c)] = false;
      break;
  }
}

/// Canonical intervals of the reference model (maximal runs of true cells).
std::vector<Interval> runs(const Ref& ref) {
  std::vector<Interval> out;
  for (int c = 0; c < kCells; ++c) {
    if (!ref[static_cast<std::size_t>(c)]) continue;
    const int start = c;
    while (c < kCells && ref[static_cast<std::size_t>(c)]) ++c;
    out.push_back(Interval{start * kCell, c * kCell});
  }
  return out;
}

double ref_measure(const Ref& ref, int lo = 0, int hi = kCells) {
  double m = 0.0;
  for (int c = lo; c < hi; ++c) {
    if (ref[static_cast<std::size_t>(c)]) m += kCell;
  }
  return m;
}

/// Reference for allocate_earliest on the grid model. Cells beyond the grid
/// (>= kHorizon) are idle, matching an IntervalSet whose content is bounded
/// by the grid.
IntervalSet ref_allocate(const Ref& occ, double from, double duration, double horizon) {
  std::vector<Interval> taken;
  double need = duration;
  auto take = [&](double lo, double hi) {
    const double amount = std::min(need, hi - lo);
    if (amount <= 0.0) return;
    if (!taken.empty() && taken.back().hi == lo) {
      taken.back().hi = lo + amount;
    } else {
      taken.push_back(Interval{lo, lo + amount});
    }
    need -= amount;
  };
  for (int c = 0; c < kCells && need > 0.0; ++c) {
    if (occ[static_cast<std::size_t>(c)]) continue;
    double lo = c * kCell;
    double hi = lo + kCell;
    if (hi <= from) continue;
    lo = std::max(lo, from);
    if (lo >= horizon) break;
    hi = std::min(hi, horizon);
    take(lo, hi);
  }
  if (need > 0.0) {
    const double lo = std::max(from, kHorizon);
    if (horizon > lo) take(lo, std::min(horizon, lo + need));
  }
  if (need > 0.0) return {};  // insufficient idle time: empty result
  IntervalSet out;
  for (const Interval& iv : taken) out.insert(iv);
  return out;
}

std::string dump(const IntervalSet& s) {
  std::ostringstream os;
  os << s;
  return os.str();
}

std::string dump(const std::vector<Interval>& ivs) {
  std::ostringstream os;
  os << "{";
  for (const Interval& iv : ivs) os << iv << " ";
  os << "}";
  return os.str();
}

/// Replay the op sequence against set + model; return a description of the
/// first divergence (std::nullopt when everything agrees).
std::optional<std::string> check_ops(const std::vector<Op>& ops) {
  IntervalSet a;
  IntervalSet b;
  Ref ra{};
  Ref rb{};
  auto mismatch = [](std::size_t i, const Op& op, const std::string& what) {
    std::ostringstream os;
    os << "after op #" << i << " (" << op << "): " << what;
    return os.str();
  };

  for (std::size_t i = 0; i < ops.size(); ++i) {
    apply(ops[i], a, b, ra, rb);
    for (const auto* pair : {&a, &b}) {
      if (!pair->check_invariants()) {
        return mismatch(i, ops[i], "canonical-form invariants broken: " + dump(*pair));
      }
    }
    if (a.intervals() != runs(ra)) {
      return mismatch(i, ops[i],
                      "A=" + dump(a) + " expected " + dump(runs(ra)));
    }
    if (b.intervals() != runs(rb)) {
      return mismatch(i, ops[i],
                      "B=" + dump(b) + " expected " + dump(runs(rb)));
    }
    if (a.measure() != ref_measure(ra)) {
      return mismatch(i, ops[i], "A.measure() diverged");
    }
  }

  // Derived queries on the final state, all exactly comparable.
  if (a.unite(b).intervals() != [&] {
        Ref u{};
        for (int c = 0; c < kCells; ++c) {
          u[static_cast<std::size_t>(c)] = ra[static_cast<std::size_t>(c)] ||
                                           rb[static_cast<std::size_t>(c)];
        }
        return runs(u);
      }()) {
    return "A.unite(B) diverged: " + dump(a.unite(b));
  }
  if (a.intersect(b).intervals() != [&] {
        Ref u{};
        for (int c = 0; c < kCells; ++c) {
          u[static_cast<std::size_t>(c)] = ra[static_cast<std::size_t>(c)] &&
                                           rb[static_cast<std::size_t>(c)];
        }
        return runs(u);
      }()) {
    return "A.intersect(B) diverged: " + dump(a.intersect(b));
  }
  if (a.subtract(b).intervals() != [&] {
        Ref u{};
        for (int c = 0; c < kCells; ++c) {
          u[static_cast<std::size_t>(c)] = ra[static_cast<std::size_t>(c)] &&
                                           !rb[static_cast<std::size_t>(c)];
        }
        return runs(u);
      }()) {
    return "A.subtract(B) diverged: " + dump(a.subtract(b));
  }
  if (a.complement(0.0, kHorizon).intervals() != [&] {
        Ref u{};
        for (int c = 0; c < kCells; ++c) {
          u[static_cast<std::size_t>(c)] = !ra[static_cast<std::size_t>(c)];
        }
        return runs(u);
      }()) {
    return "A.complement(0, 16) diverged: " + dump(a.complement(0.0, kHorizon));
  }

  for (int c = 0; c < kCells; ++c) {
    const double mid = c * kCell + kCell / 2;
    if (a.contains(mid) != ra[static_cast<std::size_t>(c)]) {
      return "A.contains(" + std::to_string(mid) + ") diverged";
    }
  }
  for (int lo = 0; lo <= kCells; lo += 8) {
    for (int hi = lo + 8; hi <= kCells; hi += 8) {
      if (a.overlap_measure(lo * kCell, hi * kCell) != ref_measure(ra, lo, hi)) {
        return "A.overlap_measure diverged on [" + std::to_string(lo * kCell) + ", " +
               std::to_string(hi * kCell) + ")";
      }
      if (a.intersects(lo * kCell, hi * kCell) != (ref_measure(ra, lo, hi) > 0.0)) {
        return "A.intersects diverged on [" + std::to_string(lo * kCell) + ", " +
               std::to_string(hi * kCell) + ")";
      }
    }
  }

  // next_boundary: smallest endpoint strictly greater than t.
  const std::vector<Interval> expected_runs = runs(ra);
  for (int g = -1; g <= kCells + 1; ++g) {
    const double t = g * kCell;
    double expected = std::numeric_limits<double>::infinity();
    for (const Interval& iv : expected_runs) {
      if (iv.lo > t) expected = std::min(expected, iv.lo);
      if (iv.hi > t) expected = std::min(expected, iv.hi);
    }
    if (a.next_boundary(t) != expected) {
      return "A.next_boundary(" + std::to_string(t) + ") diverged";
    }
  }

  // allocate_earliest (Algorithm 3's primitive) vs a greedy grid walk.
  for (const double from : {0.0, 1.75, 8.0, 15.0}) {
    for (const double duration : {0.5, 2.25, 7.75}) {
      for (const double horizon : {kHorizon, std::numeric_limits<double>::infinity()}) {
        const IntervalSet got = a.allocate_earliest(from, duration, horizon);
        const IntervalSet expected = ref_allocate(ra, from, duration, horizon);
        if (got != expected) {
          std::ostringstream os;
          os << "A.allocate_earliest(" << from << ", " << duration << ", " << horizon
             << ") = " << got << " expected " << expected << " given A=" << dump(a);
          return os.str();
        }
      }
    }
  }
  return std::nullopt;
}

std::vector<Op> generate_ops(util::Rng& rng) {
  const std::size_t count = static_cast<std::size_t>(rng.uniform_int(1, 14));
  std::vector<Op> ops;
  ops.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Op op;
    op.kind = static_cast<Op::Kind>(rng.uniform_int(0, 4));
    op.lo = static_cast<int>(rng.uniform_int(0, kCells));
    op.hi = static_cast<int>(rng.uniform_int(op.lo, kCells));
    ops.push_back(op);
  }
  return ops;
}

TAPS_PROP(IntervalSetProp, OpSequencesMatchReferenceModel, 1000) {
  prop.for_all(generate_ops, check_ops);
}

// The kit itself must shrink to a minimal sequence and reproduce from the
// printed seed: feed it a property that rejects any sequence containing an
// insert-into-A, and verify the shrunk counterexample is a single op.
TEST(PropKit, ShrinksToMinimalFailingSequence) {
  test::prop::Runner runner(50);
  std::vector<Op> final_counterexample;
  bool failed = false;
  // Run the property manually (not via GoogleTest assertions) to inspect the
  // shrink result.
  const std::uint64_t base = test::prop::base_seed(runner.config());
  for (std::size_t i = 0; i < runner.config().cases && !failed; ++i) {
    util::Rng rng(test::prop::case_seed(base, i));
    auto ops = generate_ops(rng);
    auto offending = [](const std::vector<Op>& v) {
      for (const Op& op : v) {
        if (op.kind == Op::Kind::kInsertA && op.hi > op.lo) return true;
      }
      return false;
    };
    if (!offending(ops)) continue;
    failed = true;
    // Greedy shrink via the kit's Shrinker.
    bool improved = true;
    while (improved) {
      improved = false;
      for (auto& candidate : test::prop::Shrinker<std::vector<Op>>::candidates(ops)) {
        if (offending(candidate)) {
          ops = std::move(candidate);
          improved = true;
          break;
        }
      }
    }
    final_counterexample = ops;
  }
  ASSERT_TRUE(failed) << "generator never produced an insert op in 50 cases?";
  EXPECT_EQ(final_counterexample.size(), 1u);
  EXPECT_EQ(final_counterexample[0].kind, Op::Kind::kInsertA);
}

// Determinism: the same seed regenerates the same op sequence.
TEST(PropKit, SeedReproducesCase) {
  util::Rng r1(12345);
  util::Rng r2(12345);
  const auto a = generate_ops(r1);
  const auto b = generate_ops(r2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i].kind == b[i].kind && a[i].lo == b[i].lo && a[i].hi == b[i].hi);
  }
}

}  // namespace
}  // namespace taps::util
