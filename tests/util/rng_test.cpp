#include "util/rng.hpp"

#include <gtest/gtest.h>

namespace taps::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1'000'000), b.uniform_int(0, 1'000'000));
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform_int(0, 1'000'000) == b.uniform_int(0, 1'000'000)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, ForkIsDeterministicAndIndependent) {
  Rng root(42);
  Rng a1 = root.fork("workload");
  Rng a2 = Rng(42).fork("workload");
  EXPECT_EQ(a1.uniform_int(0, 1 << 30), a2.uniform_int(0, 1 << 30));

  // Different tags produce different streams.
  Rng b = root.fork("other");
  Rng a3 = root.fork("workload");
  EXPECT_NE(a3.uniform_int(0, 1 << 30), b.uniform_int(0, 1 << 30));
}

TEST(Rng, UniformIntBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(Rng, UniformRealBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform_real(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, ExponentialMean) {
  Rng r(11);
  double sum = 0.0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) sum += r.exponential(0.040);
  EXPECT_NEAR(sum / n, 0.040, 0.002);
}

TEST(Rng, NormalTruncatedRespectsFloor) {
  Rng r(13);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_GE(r.normal_truncated(10.0, 20.0, 1.0), 1.0);
  }
}

TEST(Rng, NormalTruncatedMean) {
  Rng r(17);
  double sum = 0.0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) sum += r.normal_truncated(200.0, 20.0, 0.0);
  EXPECT_NEAR(sum / n, 200.0, 1.0);
}

TEST(Rng, PoissonMean) {
  Rng r(19);
  double sum = 0.0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(r.poisson(24.0));
  EXPECT_NEAR(sum / n, 24.0, 0.3);
}

TEST(Rng, PoissonZeroMean) {
  Rng r(23);
  EXPECT_EQ(r.poisson(0.0), 0);
}

TEST(Rng, BernoulliExtremes) {
  Rng r(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(Hashing, Fnv1aStable) {
  EXPECT_EQ(fnv1a("workload"), fnv1a("workload"));
  EXPECT_NE(fnv1a("workload"), fnv1a("workloae"));
  EXPECT_NE(fnv1a(""), fnv1a("a"));
}

TEST(Hashing, CombineOrderMatters) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
  EXPECT_EQ(hash_combine(1, 2), hash_combine(1, 2));
}

}  // namespace
}  // namespace taps::util
