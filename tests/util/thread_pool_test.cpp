#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>

namespace taps::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, DefaultSizeIsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(16,
                                 [](std::size_t i) {
                                   if (i == 7) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ManySmallTasks) {
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  std::vector<std::future<void>> futs;
  futs.reserve(500);
  for (int i = 1; i <= 500; ++i) {
    futs.push_back(pool.submit([&sum, i] { sum.fetch_add(i); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(sum.load(), 500L * 501 / 2);
}

TEST(ThreadPool, ZeroThreadsResolvesToHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(),
            std::max<std::size_t>(1, std::thread::hardware_concurrency()));
}

TEST(ThreadPool, DestructionDrainsQueuedWork) {
  // Workers only exit once the queue is empty, so every task submitted
  // before destruction must run even if it was still queued when the
  // destructor fired.
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futs;
  {
    ThreadPool pool(1);
    futs.reserve(64);
    for (int i = 0; i < 64; ++i) {
      futs.push_back(pool.submit([&ran] { ran.fetch_add(1); }));
    }
  }  // ~ThreadPool joins after the single worker drained all 64 tasks
  EXPECT_EQ(ran.load(), 64);
  for (auto& f : futs) f.get();  // none may hold a broken promise
}

TEST(ThreadPool, FutureCarriesTaskException) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::logic_error("bad"); });
  EXPECT_THROW((void)f.get(), std::logic_error);
}

}  // namespace
}  // namespace taps::util
