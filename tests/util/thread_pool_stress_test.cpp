// TSan-oriented stress tests for ThreadPool (ctest label: tsan).
//
// These deliberately maximize contention on the pool's single mutex/condvar:
// many external producer threads enqueueing while workers drain, destruction
// racing a full queue, and concurrent parallel_for waits sharing one pool.
// Under TAPS_SANITIZE=thread they are the main data-race probe for the
// annotated primitives in util/sync.hpp.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include "util/sync.hpp"

#include <atomic>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

namespace taps::util {
namespace {

TEST(ThreadPoolStress, ManyProducersManyTasks) {
  constexpr int kProducers = 8;
  constexpr int kTasksPerProducer = 200;
  ThreadPool pool(4);
  std::atomic<int> ran{0};

  std::vector<std::thread> producers;
  std::vector<std::vector<std::future<int>>> futures(kProducers);
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&pool, &ran, &futs = futures[p]] {
      futs.reserve(kTasksPerProducer);
      for (int i = 0; i < kTasksPerProducer; ++i) {
        futs.push_back(pool.submit([&ran, i] {
          ran.fetch_add(1, std::memory_order_relaxed);
          return i;
        }));
      }
    });
  }
  for (auto& t : producers) t.join();

  for (int p = 0; p < kProducers; ++p) {
    for (int i = 0; i < kTasksPerProducer; ++i) {
      EXPECT_EQ(futures[p][static_cast<std::size_t>(i)].get(), i);
    }
  }
  EXPECT_EQ(ran.load(), kProducers * kTasksPerProducer);
}

TEST(ThreadPoolStress, DestructionRacesFullQueue) {
  // Producers stop, then the pool is destroyed with work still queued: the
  // destructor must drain every queued task before joining (no lost tasks,
  // no use-after-free of the queue under TSan).
  constexpr int kRounds = 20;
  for (int round = 0; round < kRounds; ++round) {
    std::atomic<int> ran{0};
    std::vector<std::future<void>> futs;
    {
      ThreadPool pool(2);
      std::vector<std::thread> producers;
      Mutex futs_mutex;
      producers.reserve(4);
      for (int p = 0; p < 4; ++p) {
        producers.emplace_back([&pool, &ran, &futs, &futs_mutex] {
          for (int i = 0; i < 50; ++i) {
            auto f = pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
            MutexLock lock(futs_mutex);
            futs.push_back(std::move(f));
          }
        });
      }
      for (auto& t : producers) t.join();
    }  // ~ThreadPool: queue likely still full here
    EXPECT_EQ(ran.load(), 4 * 50);
    for (auto& f : futs) f.get();
  }
}

TEST(ThreadPoolStress, ConcurrentParallelForWaits) {
  // Several threads block in parallel_for on the same pool at once; their
  // futures interleave arbitrarily in the shared queue.
  ThreadPool pool(4);
  constexpr int kWaiters = 6;
  std::atomic<int> ran{0};
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int w = 0; w < kWaiters; ++w) {
    waiters.emplace_back([&pool, &ran] {
      pool.parallel_for(64, [&ran](std::size_t) {
        ran.fetch_add(1, std::memory_order_relaxed);
      });
    });
  }
  for (auto& t : waiters) t.join();
  EXPECT_EQ(ran.load(), kWaiters * 64);
}

TEST(ThreadPoolStress, ExceptionsUnderContention) {
  ThreadPool pool(4);
  for (int round = 0; round < 8; ++round) {
    EXPECT_THROW(pool.parallel_for(128,
                                   [](std::size_t i) {
                                     if (i % 17 == 3) throw std::runtime_error("boom");
                                   }),
                 std::runtime_error);
  }
  // The pool must still be fully operational afterwards.
  std::atomic<int> ran{0};
  pool.parallel_for(64, [&ran](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 64);
}

}  // namespace
}  // namespace taps::util
