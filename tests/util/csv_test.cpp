#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

namespace taps::util {
namespace {

TEST(CsvWriter, PlainRow) {
  std::ostringstream os;
  CsvWriter w(os);
  w.row("a", 1, 2.5);
  EXPECT_EQ(os.str(), "a,1,2.5\n");
}

TEST(CsvWriter, QuotesSpecialCharacters) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row({"with,comma", "with\"quote", "plain"});
  EXPECT_EQ(os.str(), "\"with,comma\",\"with\"\"quote\",plain\n");
}

TEST(CsvWriter, NumberFormatting) {
  std::ostringstream os;
  CsvWriter w(os);
  w.row(0.25, static_cast<std::size_t>(7), -3);
  EXPECT_EQ(os.str(), "0.25,7,-3\n");
}

TEST(ParseCsvLine, Simple) {
  const auto fields = parse_csv_line("a,b,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST(ParseCsvLine, QuotedFields) {
  const auto fields = parse_csv_line("\"with,comma\",\"esc\"\"aped\",x");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "with,comma");
  EXPECT_EQ(fields[1], "esc\"aped");
  EXPECT_EQ(fields[2], "x");
}

TEST(ParseCsvLine, EmptyFields) {
  const auto fields = parse_csv_line(",a,");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "");
  EXPECT_EQ(fields[2], "");
}

TEST(ParseCsvLine, StripsCarriageReturn) {
  const auto fields = parse_csv_line("a,b\r");
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[1], "b");
}

TEST(ReadCsv, RoundTripThroughFile) {
  const auto path =
      (std::filesystem::temp_directory_path() / "taps_csv_test.csv").string();
  {
    std::ofstream out(path);
    CsvWriter w(out);
    w.row("h1", "h2");
    w.row(1, 2);
    w.row("x,y", 3);
  }
  const auto rows = read_csv(path);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][0], "h1");
  EXPECT_EQ(rows[1][1], "2");
  EXPECT_EQ(rows[2][0], "x,y");
  std::remove(path.c_str());
}

TEST(ReadCsv, MissingFileThrows) {
  EXPECT_THROW((void)read_csv("/nonexistent/taps.csv"), std::runtime_error);
}

}  // namespace
}  // namespace taps::util
