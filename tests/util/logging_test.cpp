#include "util/logging.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace taps::util {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Logging, DefaultLevelSuppressesInfo) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kWarn);
  EXPECT_GT(LogLevel::kInfo, LogLevel::kDebug);
  EXPECT_TRUE(log_level() <= LogLevel::kWarn);
  // Streaming below the threshold must be a no-op (and must not crash).
  log_info() << "suppressed " << 42;
  log_debug() << "suppressed too";
}

TEST(Logging, LevelCanBeRaisedAndRestored) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(log_level(), LogLevel::kOff);
  log_error() << "even errors are off";  // must not crash
}

TEST(Logging, EmitAboveThresholdDoesNotThrow) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);
  log_error() << "expected test output " << 1 << ", " << 2.5;
}

TEST(Logging, ConcurrentEmitIsSafe) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);  // exercise the formatting path silently
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 200; ++i) log_warn() << "thread message " << i;
    });
  }
  for (auto& t : threads) t.join();
}

}  // namespace
}  // namespace taps::util
