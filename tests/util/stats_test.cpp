#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace taps::util {
namespace {

TEST(Summary, Empty) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Summary, SingleValue) {
  Summary s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Summary, KnownMoments) {
  Summary s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Summary, MergeMatchesSequential) {
  std::mt19937 gen(5);
  std::normal_distribution<double> dist(3.0, 2.0);
  Summary all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = dist(gen);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Summary, MergeWithEmpty) {
  Summary a;
  a.add(1.0);
  Summary b;
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(Percentile, Basics) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 2.0);
}

TEST(Percentile, Interpolates) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 75.0), 7.5);
}

TEST(Percentile, EmptyAndUnsorted) {
  EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile({5.0, 1.0, 3.0}, 100.0), 5.0);
}

TEST(MeanOf, Basics) {
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  EXPECT_DOUBLE_EQ(mean_of({2.0, 4.0}), 3.0);
}

}  // namespace
}  // namespace taps::util
