#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace taps::util {
namespace {

Cli make_cli() {
  Cli cli("prog", "test program");
  cli.add_flag("verbose", "more output");
  cli.add_option("seed", "rng seed", "42");
  cli.add_option("name", "a label", "default");
  return cli;
}

TEST(Cli, Defaults) {
  Cli cli = make_cli();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_FALSE(cli.flag("verbose"));
  EXPECT_EQ(cli.integer("seed"), 42);
  EXPECT_EQ(cli.str("name"), "default");
}

TEST(Cli, SpaceSeparatedValue) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--seed", "7"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_EQ(cli.integer("seed"), 7);
}

TEST(Cli, EqualsValue) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--seed=9", "--name=bench"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_EQ(cli.integer("seed"), 9);
  EXPECT_EQ(cli.str("name"), "bench");
}

TEST(Cli, Flag) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--verbose"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_TRUE(cli.flag("verbose"));
}

TEST(Cli, UnknownOptionFails) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--bogus", "1"};
  EXPECT_FALSE(cli.parse(3, argv));
  EXPECT_EQ(cli.exit_code(), 2);
}

TEST(Cli, MissingValueFails) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--seed"};
  EXPECT_FALSE(cli.parse(2, argv));
  EXPECT_EQ(cli.exit_code(), 2);
}

TEST(Cli, PositionalRejected) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "stray"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, HelpStopsParsing) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
  EXPECT_EQ(cli.exit_code(), 0);
}

TEST(Cli, NumberParsing) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--seed", "2.5"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_DOUBLE_EQ(cli.num("seed"), 2.5);
}

TEST(Cli, BadNumberThrows) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--name", "abc"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_THROW((void)cli.num("name"), std::runtime_error);
}

TEST(Cli, HelpTextListsOptions) {
  const Cli cli = make_cli();
  const std::string h = cli.help_text();
  EXPECT_NE(h.find("--seed"), std::string::npos);
  EXPECT_NE(h.find("--verbose"), std::string::npos);
  EXPECT_NE(h.find("default: 42"), std::string::npos);
}

}  // namespace
}  // namespace taps::util
