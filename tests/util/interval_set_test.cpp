#include "util/interval_set.hpp"

#include <gtest/gtest.h>

#include <random>

namespace taps::util {
namespace {

TEST(Interval, BasicProperties) {
  const Interval iv{1.0, 3.0};
  EXPECT_DOUBLE_EQ(iv.length(), 2.0);
  EXPECT_FALSE(iv.empty());
  EXPECT_TRUE(iv.contains(1.0));
  EXPECT_TRUE(iv.contains(2.9));
  EXPECT_FALSE(iv.contains(3.0));  // half-open
  EXPECT_FALSE(iv.contains(0.999));
}

TEST(Interval, EmptyWhenDegenerate) {
  EXPECT_TRUE((Interval{2.0, 2.0}).empty());
  EXPECT_TRUE((Interval{3.0, 1.0}).empty());
  EXPECT_DOUBLE_EQ((Interval{3.0, 1.0}).length(), 0.0);
}

TEST(Interval, Overlap) {
  const Interval a{0.0, 2.0};
  EXPECT_TRUE(a.overlaps(Interval{1.0, 3.0}));
  EXPECT_FALSE(a.overlaps(Interval{2.0, 3.0}));  // touching is not overlap
  EXPECT_TRUE(a.overlaps(Interval{-1.0, 0.5}));
  EXPECT_FALSE(a.overlaps(Interval{5.0, 6.0}));
}

TEST(IntervalSet, InsertDisjoint) {
  IntervalSet s;
  s.insert(0.0, 1.0);
  s.insert(2.0, 3.0);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.measure(), 2.0);
  EXPECT_TRUE(s.check_invariants());
}

TEST(IntervalSet, InsertMergesOverlap) {
  IntervalSet s;
  s.insert(0.0, 2.0);
  s.insert(1.0, 3.0);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s.intervals()[0], (Interval{0.0, 3.0}));
}

TEST(IntervalSet, InsertMergesAdjacent) {
  IntervalSet s;
  s.insert(0.0, 1.0);
  s.insert(1.0, 2.0);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s.intervals()[0], (Interval{0.0, 2.0}));
}

TEST(IntervalSet, InsertBridgesManyIntervals) {
  IntervalSet s;
  s.insert(0.0, 1.0);
  s.insert(2.0, 3.0);
  s.insert(4.0, 5.0);
  s.insert(0.5, 4.5);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s.intervals()[0], (Interval{0.0, 5.0}));
}

TEST(IntervalSet, InsertEmptyIsNoop) {
  IntervalSet s;
  s.insert(1.0, 1.0);
  s.insert(2.0, 1.0);
  EXPECT_TRUE(s.empty());
}

TEST(IntervalSet, EraseSplits) {
  IntervalSet s;
  s.insert(0.0, 10.0);
  s.erase(3.0, 4.0);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.intervals()[0], (Interval{0.0, 3.0}));
  EXPECT_EQ(s.intervals()[1], (Interval{4.0, 10.0}));
}

TEST(IntervalSet, EraseTrimsEdges) {
  IntervalSet s{{1.0, 2.0}, {3.0, 4.0}};
  s.erase(1.5, 3.5);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.intervals()[0], (Interval{1.0, 1.5}));
  EXPECT_EQ(s.intervals()[1], (Interval{3.5, 4.0}));
}

TEST(IntervalSet, TrimBefore) {
  IntervalSet s{{0.0, 2.0}, {3.0, 5.0}};
  s.trim_before(1.0);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.intervals()[0], (Interval{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(s.measure(), 3.0);
}

TEST(IntervalSet, Contains) {
  IntervalSet s{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_TRUE(s.contains(1.0));
  EXPECT_FALSE(s.contains(2.0));
  EXPECT_TRUE(s.contains(3.5));
  EXPECT_FALSE(s.contains(2.5));
  EXPECT_FALSE(s.contains(0.0));
  EXPECT_FALSE(s.contains(4.0));
}

TEST(IntervalSet, Intersects) {
  IntervalSet s{{1.0, 2.0}};
  EXPECT_TRUE(s.intersects(0.0, 1.5));
  EXPECT_TRUE(s.intersects(1.5, 5.0));
  EXPECT_FALSE(s.intersects(2.0, 3.0));  // touching at boundary
  EXPECT_FALSE(s.intersects(0.0, 1.0));
  EXPECT_FALSE(s.intersects(3.0, 2.0));  // inverted query
}

TEST(IntervalSet, OverlapMeasure) {
  IntervalSet s{{0.0, 2.0}, {4.0, 6.0}};
  EXPECT_DOUBLE_EQ(s.overlap_measure(1.0, 5.0), 2.0);
  EXPECT_DOUBLE_EQ(s.overlap_measure(2.0, 4.0), 0.0);
  EXPECT_DOUBLE_EQ(s.overlap_measure(-1.0, 7.0), 4.0);
}

TEST(IntervalSet, Unite) {
  const IntervalSet a{{0.0, 2.0}, {5.0, 6.0}};
  const IntervalSet b{{1.0, 3.0}, {6.0, 7.0}};
  const IntervalSet u = a.unite(b);
  ASSERT_EQ(u.size(), 2u);
  EXPECT_EQ(u.intervals()[0], (Interval{0.0, 3.0}));
  EXPECT_EQ(u.intervals()[1], (Interval{5.0, 7.0}));
  EXPECT_TRUE(u.check_invariants());
}

TEST(IntervalSet, UniteWithEmpty) {
  const IntervalSet a{{0.0, 1.0}};
  EXPECT_EQ(a.unite(IntervalSet{}), a);
  EXPECT_EQ(IntervalSet{}.unite(a), a);
}

TEST(IntervalSet, Intersect) {
  const IntervalSet a{{0.0, 3.0}, {5.0, 8.0}};
  const IntervalSet b{{2.0, 6.0}};
  const IntervalSet i = a.intersect(b);
  ASSERT_EQ(i.size(), 2u);
  EXPECT_EQ(i.intervals()[0], (Interval{2.0, 3.0}));
  EXPECT_EQ(i.intervals()[1], (Interval{5.0, 6.0}));
}

TEST(IntervalSet, Subtract) {
  const IntervalSet a{{0.0, 10.0}};
  const IntervalSet b{{2.0, 3.0}, {5.0, 6.0}};
  const IntervalSet d = a.subtract(b);
  ASSERT_EQ(d.size(), 3u);
  EXPECT_DOUBLE_EQ(d.measure(), 8.0);
}

TEST(IntervalSet, Complement) {
  const IntervalSet s{{1.0, 2.0}, {3.0, 4.0}};
  const IntervalSet c = s.complement(0.0, 5.0);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c.intervals()[0], (Interval{0.0, 1.0}));
  EXPECT_EQ(c.intervals()[1], (Interval{2.0, 3.0}));
  EXPECT_EQ(c.intervals()[2], (Interval{4.0, 5.0}));
}

TEST(IntervalSet, ComplementOfEmptyIsWindow) {
  const IntervalSet c = IntervalSet{}.complement(2.0, 5.0);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c.intervals()[0], (Interval{2.0, 5.0}));
}

TEST(IntervalSet, AllocateEarliestOnIdleLine) {
  const IntervalSet occ;
  const IntervalSet a = occ.allocate_earliest(1.0, 2.5);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a.intervals()[0], (Interval{1.0, 3.5}));
}

TEST(IntervalSet, AllocateEarliestSkipsBusyTime) {
  // Busy [1,2) and [3,4): 2 units starting at 0 land on [0,1) and [2,3).
  const IntervalSet occ{{1.0, 2.0}, {3.0, 4.0}};
  const IntervalSet a = occ.allocate_earliest(0.0, 2.0);
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a.intervals()[0], (Interval{0.0, 1.0}));
  EXPECT_EQ(a.intervals()[1], (Interval{2.0, 3.0}));
}

TEST(IntervalSet, AllocateEarliestPartialFirstGap) {
  const IntervalSet occ{{2.0, 3.0}};
  const IntervalSet a = occ.allocate_earliest(0.0, 1.5);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a.intervals()[0], (Interval{0.0, 1.5}));
}

TEST(IntervalSet, AllocateEarliestStartsMidBusy) {
  // `from` inside a busy interval: allocation starts when it ends.
  const IntervalSet occ{{0.0, 2.0}};
  const IntervalSet a = occ.allocate_earliest(1.0, 1.0);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a.intervals()[0], (Interval{2.0, 3.0}));
}

TEST(IntervalSet, AllocateEarliestRespectsHorizon) {
  const IntervalSet occ{{0.0, 3.0}};
  // Only [3,4) idle before the horizon 4: one unit fits, two do not.
  EXPECT_FALSE(occ.allocate_earliest(0.0, 1.0, 4.0).empty());
  EXPECT_TRUE(occ.allocate_earliest(0.0, 1.0001, 4.0).empty());
}

TEST(IntervalSet, AllocateEarliestInfeasibleReturnsEmpty) {
  const IntervalSet occ{{0.0, 10.0}};
  EXPECT_TRUE(occ.allocate_earliest(0.0, 1.0, 10.0).empty());
}

TEST(IntervalSet, NextBoundary) {
  const IntervalSet s{{1.0, 2.0}, {4.0, 5.0}};
  EXPECT_DOUBLE_EQ(s.next_boundary(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.next_boundary(1.0), 2.0);
  EXPECT_DOUBLE_EQ(s.next_boundary(1.5), 2.0);
  EXPECT_DOUBLE_EQ(s.next_boundary(2.0), 4.0);
  EXPECT_DOUBLE_EQ(s.next_boundary(4.5), 5.0);
  EXPECT_TRUE(std::isinf(s.next_boundary(5.0)));
}

// ---------------------------------------------------------------------------
// Property tests: random operation sequences keep the canonical invariants,
// and the algebra is consistent (measure additivity, complement identities,
// allocation lands only on idle time).
// ---------------------------------------------------------------------------

class IntervalSetPropertyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(IntervalSetPropertyTest, RandomInsertEraseKeepsInvariants) {
  std::mt19937 gen(GetParam());
  std::uniform_real_distribution<double> point(0.0, 100.0);
  IntervalSet s;
  for (int step = 0; step < 300; ++step) {
    const double a = point(gen);
    const double b = point(gen);
    if (step % 3 == 0) {
      s.erase(std::min(a, b), std::max(a, b));
    } else {
      s.insert(std::min(a, b), std::max(a, b));
    }
    ASSERT_TRUE(s.check_invariants()) << "step " << step;
  }
}

TEST_P(IntervalSetPropertyTest, UnionMeasureMatchesInclusionExclusion) {
  std::mt19937 gen(GetParam() + 1000);
  std::uniform_real_distribution<double> point(0.0, 50.0);
  IntervalSet a, b;
  for (int i = 0; i < 20; ++i) {
    double x = point(gen), y = point(gen);
    a.insert(std::min(x, y), std::max(x, y) + 0.1);
    x = point(gen);
    y = point(gen);
    b.insert(std::min(x, y), std::max(x, y) + 0.1);
  }
  const double lhs = a.unite(b).measure();
  const double rhs = a.measure() + b.measure() - a.intersect(b).measure();
  EXPECT_NEAR(lhs, rhs, 1e-9);
}

TEST_P(IntervalSetPropertyTest, ComplementRoundTrip) {
  std::mt19937 gen(GetParam() + 2000);
  std::uniform_real_distribution<double> point(0.0, 20.0);
  IntervalSet s;
  for (int i = 0; i < 10; ++i) {
    const double x = point(gen), y = point(gen);
    s.insert(std::min(x, y), std::max(x, y) + 0.05);
  }
  const IntervalSet c = s.complement(0.0, 25.0);
  // s and its complement partition the window.
  EXPECT_NEAR(s.overlap_measure(0.0, 25.0) + c.measure(), 25.0, 1e-9);
  EXPECT_TRUE(s.intersect(c).empty());
}

TEST_P(IntervalSetPropertyTest, AllocationIsIdleAndExact) {
  std::mt19937 gen(GetParam() + 3000);
  std::uniform_real_distribution<double> point(0.0, 30.0);
  std::uniform_real_distribution<double> dur(0.1, 8.0);
  IntervalSet occ;
  for (int i = 0; i < 8; ++i) {
    const double x = point(gen), y = point(gen);
    occ.insert(std::min(x, y), std::max(x, y) + 0.1);
  }
  const double need = dur(gen);
  const double from = point(gen);
  const IntervalSet got = occ.allocate_earliest(from, need);
  ASSERT_FALSE(got.empty());  // horizon is infinite
  EXPECT_NEAR(got.measure(), need, 1e-9);
  EXPECT_TRUE(got.intersect(occ).empty());  // never allocates busy time
  EXPECT_GE(got.front_start(), from - 1e-12);
  // Earliest-fit: every idle instant before the allocation start is used.
  const IntervalSet idle_before =
      occ.complement(from, got.back_end()).subtract(got);
  EXPECT_LT(idle_before.measure(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSetPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 7u, 11u, 23u, 42u, 97u));

}  // namespace
}  // namespace taps::util
