// Cross-module integration and invariant tests: run full experiments across
// seeds/topologies and check the physics every scheduler must respect, plus
// the ordering relations the paper's evaluation depends on.
#include <gtest/gtest.h>

#include "exp/experiment.hpp"

namespace taps {
namespace {

using exp::SchedulerKind;

workload::Scenario scenario_with_seed(std::uint64_t seed,
                                      workload::TopoKind topo = workload::TopoKind::kSingleRooted) {
  workload::Scenario s = topo == workload::TopoKind::kFatTree
                             ? workload::Scenario::fat_tree(false)
                             : workload::Scenario::single_rooted(false);
  s.workload.task_count = 15;
  s.workload.flows_per_task_mean = 8.0;
  s.seed = seed;
  return s;
}

class AllSchedulersAllSeeds
    : public ::testing::TestWithParam<std::tuple<SchedulerKind, std::uint64_t>> {};

TEST_P(AllSchedulersAllSeeds, PhysicalInvariantsHold) {
  const auto [kind, seed] = GetParam();
  const auto run = exp::run_experiment_full(scenario_with_seed(seed), kind);
  const net::Network& net = *run.network;

  for (const auto& f : net.flows()) {
    // Byte conservation.
    EXPECT_NEAR(f.bytes_sent + f.remaining, f.spec.size, 1e-3)
        << "flow " << f.id() << " under " << exp::to_string(kind);
    EXPECT_GE(f.bytes_sent, -1e-9);
    // Every flow reached a terminal state.
    EXPECT_TRUE(f.finished());
    if (f.state == net::FlowState::kCompleted) {
      EXPECT_LE(f.completion_time, f.spec.deadline + 1e-6);
      EXPECT_GE(f.completion_time, f.spec.arrival);
      EXPECT_LE(f.remaining, 1e-3);
    }
    if (f.state == net::FlowState::kRejected && kind == SchedulerKind::kVarys) {
      EXPECT_DOUBLE_EQ(f.bytes_sent, 0.0);  // Varys never starts rejected work
    }
  }
  for (const auto& t : net.tasks()) {
    EXPECT_TRUE(t.finished());
    if (t.state == net::TaskState::kCompleted) {
      EXPECT_EQ(t.completed_flows, t.flow_count());
      for (const net::FlowId fid : t.spec.flows) {
        EXPECT_EQ(net.flow(fid).state, net::FlowState::kCompleted);
      }
    }
  }
  // Metric identities.
  const auto& m = run.result.metrics;
  EXPECT_LE(m.task_size_ratio, m.app_throughput + 1e-12);
  EXPECT_LE(m.wasted_bandwidth_ratio, 1.0);
  EXPECT_GE(m.useful_bytes, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AllSchedulersAllSeeds,
    ::testing::Combine(::testing::Values(SchedulerKind::kFairSharing, SchedulerKind::kD3,
                                         SchedulerKind::kPdq, SchedulerKind::kBaraat,
                                         SchedulerKind::kVarys, SchedulerKind::kTaps),
                       ::testing::Values(1u, 17u, 42u)),
    [](const auto& pinfo) {
      return std::string(exp::to_string(std::get<0>(pinfo.param))) + "_seed" +
             std::to_string(std::get<1>(pinfo.param));
    });

TEST(Integration, TapsNeverWastesAndNeverFailsAdmitted) {
  for (const std::uint64_t seed : {3u, 9u, 27u, 81u}) {
    const auto run =
        exp::run_experiment_full(scenario_with_seed(seed), SchedulerKind::kTaps);
    EXPECT_DOUBLE_EQ(run.result.metrics.wasted_bandwidth_ratio, 0.0);
    for (const auto& t : run.network->tasks()) {
      EXPECT_NE(t.state, net::TaskState::kFailed) << "seed " << seed;
    }
  }
}

TEST(Integration, TapsNeverFailsAcrossDeadlineSweep) {
  // Regression: a rate-change boundary landing within float noise of the
  // current event time used to be discarded together with every boundary
  // behind it, so an admitted flow could sleep through its transmission
  // window and miss its deadline. Reproduced at fig-6 sweep scale.
  for (int ms = 20; ms <= 60; ms += 10) {
    for (const std::uint64_t rep : {0u, 1u, 2u}) {
      workload::Scenario s = workload::Scenario::single_rooted(false);
      s.workload.mean_deadline = ms / 1000.0;
      s.seed = util::hash_combine(42, rep);
      const auto run = exp::run_experiment_full(s, SchedulerKind::kTaps);
      for (const auto& t : run.network->tasks()) {
        EXPECT_NE(t.state, net::TaskState::kFailed)
            << "deadline " << ms << "ms rep " << rep << " task " << t.id();
      }
    }
  }
}

TEST(Integration, TapsNeverFailsOnFatTreeMultipath) {
  // Regression: the greedy multi-path allocator is not monotone, so a
  // compacting re-plan after a rejection could strand an already-admitted
  // flow. Plans are now committed transactionally; admitted tasks must
  // never fail even under heavy fat-tree contention.
  for (const std::uint64_t rep : {0u, 1u, 2u}) {
    workload::Scenario s = workload::Scenario::fat_tree(false);
    s.seed = util::hash_combine(42, rep);
    const auto run = exp::run_experiment_full(s, SchedulerKind::kTaps);
    for (const auto& t : run.network->tasks()) {
      EXPECT_NE(t.state, net::TaskState::kFailed) << "rep " << rep << " task " << t.id();
    }
    EXPECT_DOUBLE_EQ(run.result.metrics.wasted_bandwidth_ratio, 0.0);
  }
}

TEST(Integration, TapsBeatsFairSharingOnTaskRatio) {
  // The headline claim, averaged over seeds to be robust.
  double taps = 0.0, fair = 0.0;
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    taps += exp::run_experiment(scenario_with_seed(seed), SchedulerKind::kTaps)
                .metrics.task_completion_ratio;
    fair += exp::run_experiment(scenario_with_seed(seed), SchedulerKind::kFairSharing)
                .metrics.task_completion_ratio;
  }
  EXPECT_GT(taps, fair);
}

TEST(Integration, FatTreeRunsAllSchedulers) {
  const workload::Scenario s = scenario_with_seed(5, workload::TopoKind::kFatTree);
  for (const SchedulerKind k : exp::all_schedulers()) {
    const auto r = exp::run_experiment(s, k);
    EXPECT_EQ(r.metrics.tasks_total, 15u) << exp::to_string(k);
  }
}

TEST(Integration, LooseDeadlinesCompleteEverythingUnderTaps) {
  workload::Scenario s = scenario_with_seed(8);
  s.workload.mean_deadline = 10.0;  // 10 s for ~ms of data: trivially feasible
  s.workload.min_deadline = 5.0;
  s.workload.arrival_rate = 10.0;
  const auto r = exp::run_experiment(s, SchedulerKind::kTaps);
  EXPECT_DOUBLE_EQ(r.metrics.task_completion_ratio, 1.0);
}

TEST(Integration, ImpossibleDeadlinesCompleteNothing) {
  workload::Scenario s = scenario_with_seed(8);
  s.workload.mean_deadline = 1e-7;  // far below a single packet time
  s.workload.min_deadline = 1e-7;
  for (const SchedulerKind k : exp::all_schedulers()) {
    const auto r = exp::run_experiment(s, k);
    EXPECT_DOUBLE_EQ(r.metrics.task_completion_ratio, 0.0) << exp::to_string(k);
  }
}

}  // namespace
}  // namespace taps
