#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

namespace taps::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&](double) { order.push_back(3); });
  q.schedule(1.0, [&](double) { order.push_back(1); });
  q.schedule(2.0, [&](double) { order.push_back(2); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, FifoTieBreak) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&](double) { order.push_back(1); });
  q.schedule(1.0, [&](double) { order.push_back(2); });
  q.schedule(1.0, [&](double) { order.push_back(3); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.schedule(1.0, [&](double) { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));  // second cancel is a no-op
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelOneOfMany) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&](double) { order.push_back(1); });
  const EventId id = q.schedule(2.0, [&](double) { order.push_back(2); });
  q.schedule(3.0, [&](double) { order.push_back(3); });
  q.cancel(id);
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, CallbackSeesEventTime) {
  EventQueue q;
  double seen = -1.0;
  q.schedule(2.5, [&](double now) { seen = now; });
  q.run_next();
  EXPECT_DOUBLE_EQ(seen, 2.5);
}

TEST(EventQueue, EventsMayScheduleMoreEvents) {
  EventQueue q;
  int count = 0;
  std::function<void(double)> chain = [&](double now) {
    if (++count < 5) q.schedule(now + 1.0, chain);
  };
  q.schedule(0.0, chain);
  while (!q.empty()) q.run_next();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(q.now(), 4.0);
}

TEST(EventQueue, SchedulingInPastThrows) {
  EventQueue q;
  q.schedule(5.0, [](double) {});
  q.run_next();
  EXPECT_THROW((void)q.schedule(1.0, [](double) {}), std::invalid_argument);
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&](double) { order.push_back(1); });
  q.schedule(2.0, [&](double) { order.push_back(2); });
  q.schedule(5.0, [&](double) { order.push_back(5); });
  q.run_until(3.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, PeekTimeSkipsCancelled) {
  EventQueue q;
  const EventId id = q.schedule(1.0, [](double) {});
  q.schedule(2.0, [](double) {});
  q.cancel(id);
  EXPECT_DOUBLE_EQ(q.peek_time(), 2.0);
}

}  // namespace
}  // namespace taps::sim
