#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

namespace taps::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&](double) { order.push_back(3); });
  q.schedule(1.0, [&](double) { order.push_back(1); });
  q.schedule(2.0, [&](double) { order.push_back(2); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, FifoTieBreak) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&](double) { order.push_back(1); });
  q.schedule(1.0, [&](double) { order.push_back(2); });
  q.schedule(1.0, [&](double) { order.push_back(3); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.schedule(1.0, [&](double) { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));  // second cancel is a no-op
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelOneOfMany) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&](double) { order.push_back(1); });
  const EventId id = q.schedule(2.0, [&](double) { order.push_back(2); });
  q.schedule(3.0, [&](double) { order.push_back(3); });
  q.cancel(id);
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, CallbackSeesEventTime) {
  EventQueue q;
  double seen = -1.0;
  q.schedule(2.5, [&](double now) { seen = now; });
  q.run_next();
  EXPECT_DOUBLE_EQ(seen, 2.5);
}

TEST(EventQueue, EventsMayScheduleMoreEvents) {
  EventQueue q;
  int count = 0;
  std::function<void(double)> chain = [&](double now) {
    if (++count < 5) q.schedule(now + 1.0, chain);
  };
  q.schedule(0.0, chain);
  while (!q.empty()) q.run_next();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(q.now(), 4.0);
}

TEST(EventQueue, SchedulingInPastThrows) {
  EventQueue q;
  q.schedule(5.0, [](double) {});
  q.run_next();
  EXPECT_THROW((void)q.schedule(1.0, [](double) {}), std::invalid_argument);
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&](double) { order.push_back(1); });
  q.schedule(2.0, [&](double) { order.push_back(2); });
  q.schedule(5.0, [&](double) { order.push_back(5); });
  q.run_until(3.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, PeekTimeSkipsCancelled) {
  EventQueue q;
  const EventId id = q.schedule(1.0, [](double) {});
  q.schedule(2.0, [](double) {});
  q.cancel(id);
  EXPECT_DOUBLE_EQ(q.peek_time(), 2.0);
}

TEST(EventQueue, CompactionBoundsStaleEntries) {
  // Timer-wheel pattern: every event is re-armed (cancel + schedule) many
  // times before it fires. Without compaction the heap accumulates one stale
  // entry per cancel — O(cancelled) — and only sheds the ones that happen to
  // surface at the top. The compaction pass keeps heap_size() <= 3 * size()
  // after every operation.
  EventQueue q;
  constexpr int kTimers = 64;
  constexpr int kRearms = 200;
  std::vector<EventId> ids;
  ids.reserve(kTimers);
  for (int i = 0; i < kTimers; ++i) {
    ids.push_back(q.schedule(1000.0 + i, [](double) {}));
  }
  std::size_t peak_heap = q.heap_size();
  for (int round = 0; round < kRearms; ++round) {
    for (int i = 0; i < kTimers; ++i) {
      ASSERT_TRUE(q.cancel(ids[static_cast<std::size_t>(i)]));
      ASSERT_LE(q.heap_size(), 3 * q.size() + 3);  // slack only while live dips
      ids[static_cast<std::size_t>(i)] =
          q.schedule(1000.0 + i + round, [](double) {});
    }
    peak_heap = std::max(peak_heap, q.heap_size());
    ASSERT_EQ(q.size(), static_cast<std::size_t>(kTimers));
    ASSERT_LE(q.heap_size(), 3 * q.size());
  }
  // 64 live timers, 12800 cancels: the heap never grew past the 3x bound.
  EXPECT_LE(peak_heap, 3u * kTimers);
  EXPECT_GT(peak_heap, static_cast<std::size_t>(kTimers));  // laziness did buy something

  // Draining to empty leaves no stale residue behind.
  for (const EventId id : ids) q.cancel(id);
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.heap_size(), 0u);
}

TEST(EventQueue, CompactionPreservesOrderAndCallbacks) {
  // Interleave schedules and cancels so several compactions fire, then check
  // the surviving events still run in time order with FIFO tie-breaking.
  EventQueue q;
  std::vector<int> order;
  std::vector<EventId> doomed;
  for (int i = 0; i < 100; ++i) {
    if (i % 3 == 0) {
      q.schedule(static_cast<double>(100 - i), [&order, i](double) { order.push_back(i); });
    } else {
      doomed.push_back(q.schedule(static_cast<double>(i), [](double) {}));
    }
  }
  for (const EventId id : doomed) ASSERT_TRUE(q.cancel(id));
  EXPECT_LE(q.heap_size(), 3 * q.size());
  while (!q.empty()) q.run_next();
  // Survivors were scheduled at times 100, 97, ..., 1: reverse of insertion.
  std::vector<int> expected;
  for (int i = 99; i >= 0; i -= 3) expected.push_back(i);
  EXPECT_EQ(order, expected);
}

}  // namespace
}  // namespace taps::sim
