// Engine-equivalence pins: SimEngine::kIndexed must replay
// SimEngine::kReference bit-for-bit — same flow outcomes (state, remaining,
// bytes_sent, completion_time in full precision), same SimStats outcome
// fields (events, completions, misses, end_time), and the same timeline
// event stream when a recorder is attached. Only the SimEffort work counters
// may differ (that is the point of the indexed engine).
//
// The property runs every scheduler — including TAPS under both the
// event-driven and the rescan rate maintenance — over randomized multi-wave
// workloads from the shrinking kit, so a divergence reports a seed and a
// minimal scheduler/workload pair.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/fixtures.hpp"
#include "common/prop.hpp"
#include "core/taps_scheduler.hpp"
#include "exp/experiment.hpp"
#include "sim/timeline.hpp"
#include "workload/task_generator.hpp"

namespace taps::sim {
namespace {

using test::add_task;
using test::flow;
using test::make_dumbbell;

/// One scheduler configuration under test: a kind, plus the TAPS rate-
/// maintenance toggle (ignored for other kinds).
struct SchedConfig {
  exp::SchedulerKind kind = exp::SchedulerKind::kFairSharing;
  bool event_driven_rates = true;
};

std::unique_ptr<Scheduler> make(const SchedConfig& sc) {
  if (sc.kind == exp::SchedulerKind::kTaps) {
    core::TapsConfig cfg;
    cfg.max_paths = 16;
    cfg.event_driven_rates = sc.event_driven_rates;
    return std::make_unique<core::TapsScheduler>(cfg);
  }
  return exp::make_scheduler(sc.kind, 16);
}

const std::vector<SchedConfig>& all_configs() {
  static const std::vector<SchedConfig> kConfigs = [] {
    std::vector<SchedConfig> v;
    for (const exp::SchedulerKind k : exp::extended_schedulers()) {
      v.push_back(SchedConfig{k, true});
    }
    v.push_back(SchedConfig{exp::SchedulerKind::kTaps, false});
    return v;
  }();
  return kConfigs;
}

struct RunOutput {
  std::string fingerprint;  // hexfloat flow outcomes + SimStats outcome fields
  Timeline timeline;
};

/// Full-precision dump of everything both engines must agree on. SimEffort
/// is deliberately absent — it is engine-dependent by design.
std::string outcome_fingerprint(const net::Network& net, const SimStats& stats) {
  std::ostringstream os;
  os << std::hexfloat;
  os << stats.end_time << ' ' << stats.events << ' ' << stats.completions << ' '
     << stats.misses << '\n';
  for (const net::Flow& f : net.flows()) {
    os << f.id() << ' ' << net::to_string(f.state) << ' ' << f.remaining << ' '
       << f.bytes_sent << ' ' << f.completion_time << '\n';
  }
  return os.str();
}

RunOutput run_once(const workload::WorkloadConfig& wc, std::uint64_t workload_seed,
                   const SchedConfig& sc, SimEngine engine) {
  const auto topology = workload::make_topology(workload::Scenario::single_rooted(false));
  net::Network net(*topology);
  util::Rng rng(workload_seed);
  (void)workload::generate(net, wc, rng);

  const std::unique_ptr<Scheduler> scheduler = make(sc);
  TimelineRecorder rec(TimelineConfig{.record_transmissions = true});
  if (auto* base = dynamic_cast<sched::BaseScheduler*>(scheduler.get())) {
    base->set_schedule_observer(&rec);
  }
  FluidSimulator simulator(net, *scheduler, engine);
  simulator.set_observer(&rec);
  const SimStats stats = simulator.run();

  RunOutput out;
  out.fingerprint = outcome_fingerprint(net, stats);
  out.timeline = rec.timeline();
  return out;
}

struct WorkloadCase {
  int task_count = 0;
  double flows_per_task_mean = 0.0;
  double arrival_rate = 0.0;
  double mean_deadline = 0.0;
  int waves_per_task = 1;
  workload::SizeDistribution size_distribution = workload::SizeDistribution::kNormal;
  std::uint64_t workload_seed = 0;
};

std::ostream& operator<<(std::ostream& os, const WorkloadCase& c) {
  return os << "tasks=" << c.task_count << " flows_mean=" << c.flows_per_task_mean
            << " lambda=" << c.arrival_rate << " deadline_mean=" << c.mean_deadline
            << " waves=" << c.waves_per_task
            << " sizes=" << workload::to_string(c.size_distribution)
            << " workload_seed=" << c.workload_seed;
}

WorkloadCase generate_case(util::Rng& rng) {
  WorkloadCase c;
  c.task_count = static_cast<int>(rng.uniform_int(3, 14));
  c.flows_per_task_mean = rng.uniform_real(1.0, 10.0);
  c.arrival_rate = rng.uniform_real(50.0, 600.0);
  c.mean_deadline = rng.uniform_real(0.010, 0.080);
  c.waves_per_task = static_cast<int>(rng.uniform_int(1, 3));
  c.size_distribution = static_cast<workload::SizeDistribution>(rng.uniform_int(0, 2));
  c.workload_seed = static_cast<std::uint64_t>(rng.uniform_int(1, 1'000'000));
  return c;
}

TAPS_PROP(SimEngineEquivProp, IndexedMatchesReferenceBitwise, 8) {
  prop.for_all(generate_case, [](const WorkloadCase& c) -> std::optional<std::string> {
    workload::WorkloadConfig wc;
    wc.task_count = c.task_count;
    wc.flows_per_task_mean = c.flows_per_task_mean;
    wc.arrival_rate = c.arrival_rate;
    wc.mean_deadline = c.mean_deadline;
    wc.waves_per_task = c.waves_per_task;
    wc.size_distribution = c.size_distribution;
    for (const SchedConfig& sc : all_configs()) {
      const RunOutput ref = run_once(wc, c.workload_seed, sc, SimEngine::kReference);
      const RunOutput idx = run_once(wc, c.workload_seed, sc, SimEngine::kIndexed);
      const std::string label = std::string(exp::to_string(sc.kind)) +
                                (sc.kind == exp::SchedulerKind::kTaps
                                     ? (sc.event_driven_rates ? "/event-driven" : "/rescan")
                                     : "");
      if (ref.fingerprint != idx.fingerprint) {
        return label + ": outcome fingerprints diverge\n--- reference:\n" + ref.fingerprint +
               "--- indexed:\n" + idx.fingerprint;
      }
      if (!(ref.timeline == idx.timeline)) {
        return label + ": timelines diverge (" + std::to_string(ref.timeline.events.size()) +
               " vs " + std::to_string(idx.timeline.events.size()) + " events)";
      }
    }
    return std::nullopt;
  });
}

/// Deterministic contended-dumbbell case crossing every decision path
/// (admit, reject, preempt) under incremental TAPS, with the recorder
/// attached to both planes — the same workload as the TimelineIdentity
/// suite, now compared across engines.
TEST(SimEngineEquiv, TimelineIdenticalOnContendedDumbbell) {
  for (const bool incremental : {false, true}) {
    auto run_engine = [incremental](SimEngine engine) {
      auto d = make_dumbbell(4);
      net::Network net(*d.topology);
      add_task(net, 0.0, 8.0,
               {flow(d.left[0], d.right[0], 4.0), flow(d.left[1], d.right[1], 2.0)});
      add_task(net, 1.0, 3.0, {flow(d.left[2], d.right[2], 1.5)});
      add_task(net, 1.0, 9.0, {flow(d.left[3], d.right[3], 3.0)});
      add_task(net, 2.0, 4.0, {flow(d.left[0], d.right[1], 1.0)});
      add_task(net, 2.5, 5.0, {flow(d.left[1], d.right[0], 2.0)});
      add_task(net, 3.0, 6.5, {flow(d.left[2], d.right[3], 2.5)});
      core::TapsConfig cfg;
      cfg.incremental_replan = incremental;
      cfg.preempt_policy = core::PreemptPolicy::kSchedulable;
      cfg.trim_interval = 2;
      core::TapsScheduler sched(cfg);
      TimelineRecorder rec(TimelineConfig{.record_transmissions = true});
      sched.set_schedule_observer(&rec);
      FluidSimulator simulator(net, sched, engine);
      simulator.set_observer(&rec);
      const SimStats stats = simulator.run();
      return std::make_pair(outcome_fingerprint(net, stats), rec.timeline());
    };
    const auto [ref_fp, ref_tl] = run_engine(SimEngine::kReference);
    const auto [idx_fp, idx_tl] = run_engine(SimEngine::kIndexed);
    EXPECT_EQ(ref_fp, idx_fp) << "incremental=" << incremental;
    EXPECT_TRUE(ref_tl == idx_tl) << "timeline diverged (incremental=" << incremental << ")";
    EXPECT_GT(ref_tl.events.size(), 6u);
  }
}

/// The effort counters must actually tell the two engines apart on a
/// workload with paused flows (TAPS pauses everything outside its slices):
/// equivalence above would hold vacuously if the indexed engine silently
/// fell back to rescanning.
TEST(SimEngineEquiv, IndexedEngineActuallySkipsWork) {
  workload::WorkloadConfig wc;
  wc.task_count = 20;
  wc.flows_per_task_mean = 10.0;
  auto run_engine = [&wc](SimEngine engine) {
    const auto topology =
        workload::make_topology(workload::Scenario::single_rooted(false));
    net::Network net(*topology);
    util::Rng rng(42);
    (void)workload::generate(net, wc, rng);
    const auto scheduler = exp::make_scheduler(exp::SchedulerKind::kTaps, 16);
    FluidSimulator simulator(net, *scheduler, engine);
    return simulator.run();
  };
  const SimStats ref = run_engine(SimEngine::kReference);
  const SimStats idx = run_engine(SimEngine::kIndexed);
  EXPECT_EQ(ref.events, idx.events);
  EXPECT_EQ(ref.completions, idx.completions);
  EXPECT_EQ(ref.misses, idx.misses);
  EXPECT_EQ(ref.end_time, idx.end_time);
  EXPECT_LT(idx.effort.flows_touched, ref.effort.flows_touched);
  EXPECT_GT(idx.effort.lazy_skips, 0u);
  EXPECT_EQ(ref.effort.lazy_skips, 0u);      // the rescan never skips
  EXPECT_EQ(ref.effort.rate_dirty, 0u);      // the reference never drains
  EXPECT_GT(idx.effort.rate_dirty, 0u);
}

}  // namespace
}  // namespace taps::sim
