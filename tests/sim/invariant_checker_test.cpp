// Unit and negative tests of the invariant oracle itself: each invariant is
// violated directly (by feeding the checker hand-crafted observations or by
// corrupting network state) and must throw InvariantViolation with a useful
// trace. Without these, a silently broken oracle would make every
// oracle-backed suite prove nothing.
#include "sim/invariant_checker.hpp"

#include <gtest/gtest.h>

#include "common/fixtures.hpp"
#include "core/taps_scheduler.hpp"

namespace taps::sim {
namespace {

struct Rig {
  test::Dumbbell d = test::make_dumbbell(2);
  net::Network net{*d.topology};

  Rig() {
    // Two cross flows with distinct endpoints: they share exactly the
    // bottleneck link. Unit capacity; sizes in transfer-time units.
    test::add_task(net, 0.0, 8.0,
                   {test::flow(d.left[0], d.right[0], 2.0),
                    test::flow(d.left[1], d.right[1], 2.0)});
    for (auto& f : net.flows()) {
      f.path = d.topology->paths(f.spec.src, f.spec.dst, 1).front();
      f.state = net::FlowState::kActive;
    }
  }

  net::Flow& flow(int i) { return net.flow(i); }
};

TEST(InvariantChecker, CleanSequenceAccepted) {
  Rig rig;
  InvariantConfig cfg;
  cfg.exclusive_links = true;
  InvariantChecker checker(rig.net, cfg);
  checker.on_event(0.0);
  checker.on_transmit(rig.flow(0), 0.0, 2.0, 2.0);
  checker.on_event(2.0);
  checker.on_transmit(rig.flow(1), 2.0, 4.0, 2.0);
  checker.on_event(4.0);
  EXPECT_EQ(checker.segments(), 2u);
  EXPECT_EQ(checker.events(), 3u);
}

TEST(InvariantChecker, ThrowsOnNonMonotoneEventTime) {
  Rig rig;
  InvariantChecker checker(rig.net);
  checker.on_event(1.0);
  EXPECT_THROW(checker.on_event(0.5), InvariantViolation);
}

TEST(InvariantChecker, ThrowsOnLinkOversubscription) {
  Rig rig;
  InvariantChecker checker(rig.net);  // capacity check applies to ALL schedulers
  // Both flows at full rate on the shared unit-capacity bottleneck: the
  // window [0,1) sums to rate 2.
  checker.on_transmit(rig.flow(0), 0.0, 1.0, 1.0);
  checker.on_transmit(rig.flow(1), 0.0, 1.0, 1.0);
  EXPECT_THROW(checker.on_event(1.0), InvariantViolation);  // window closes here
}

TEST(InvariantChecker, ThrowsOnExclusiveOverlap) {
  Rig rig;
  InvariantConfig cfg;
  cfg.exclusive_links = true;
  InvariantChecker checker(rig.net, cfg);
  checker.on_transmit(rig.flow(0), 0.0, 1.0, 1.0);
  // Same window, same bottleneck link: caught immediately via
  // OccupancyMap::collides, before any capacity accounting runs.
  EXPECT_THROW(checker.on_transmit(rig.flow(1), 0.0, 1.0, 1.0), InvariantViolation);
}

TEST(InvariantChecker, AllowsTouchingSegmentsUnderExclusiveMode) {
  Rig rig;
  InvariantConfig cfg;
  cfg.exclusive_links = true;
  InvariantChecker checker(rig.net, cfg);
  checker.on_transmit(rig.flow(0), 0.0, 1.0, 1.0);
  // Back-to-back slices legitimately share the endpoint.
  EXPECT_NO_THROW(checker.on_transmit(rig.flow(1), 1.0, 2.0, 1.0));
}

TEST(InvariantChecker, ThrowsOnTransmissionPastDeadline) {
  Rig rig;
  InvariantChecker checker(rig.net);
  EXPECT_THROW(checker.on_transmit(rig.flow(0), 7.5, 8.5, 1.0), InvariantViolation);
}

TEST(InvariantChecker, ThrowsOnActiveFlowPastDeadline) {
  Rig rig;
  InvariantChecker checker(rig.net);
  // Both flows still kActive while the clock moved past their deadline: the
  // simulator must have settled them at t=8.
  EXPECT_THROW(checker.on_event(9.0), InvariantViolation);
}

TEST(InvariantChecker, ThrowsOnByteAccountingMismatch) {
  Rig rig;
  InvariantChecker checker(rig.net);
  checker.on_transmit(rig.flow(0), 0.0, 1.0, 1.0);  // observed: 1 of 2 bytes
  net::Flow& f = rig.flow(0);
  f.state = net::FlowState::kCompleted;  // claims completion...
  f.bytes_sent = f.spec.size;            // ...and full accounting
  f.remaining = 0.0;
  f.completion_time = 1.0;
  EXPECT_THROW(checker.on_flow_finished(f, 1.0), InvariantViolation);
}

TEST(InvariantChecker, ThrowsOnNonTerminalFlowAtQuiescence) {
  Rig rig;
  InvariantChecker checker(rig.net);
  EXPECT_THROW(checker.on_run_complete(rig.net, 4.0), InvariantViolation);
}

TEST(InvariantChecker, ViolationCarriesEventTrace) {
  Rig rig;
  InvariantConfig cfg;
  cfg.exclusive_links = true;
  InvariantChecker checker(rig.net, cfg);
  checker.on_event(0.0);
  checker.on_transmit(rig.flow(0), 0.0, 1.0, 1.0);
  try {
    checker.on_transmit(rig.flow(1), 0.0, 1.0, 1.0);
    FAIL() << "expected InvariantViolation";
  } catch (const InvariantViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("invariant violation"), std::string::npos) << what;
    EXPECT_NE(what.find("exclusive-use violated"), std::string::npos) << what;
    // The trace must show the events leading up to the violation.
    EXPECT_NE(what.find("event t=0"), std::string::npos) << what;
    EXPECT_NE(what.find("xmit"), std::string::npos) << what;
  }
}

// End-to-end positive check: a full TAPS run on the dumbbell passes the
// oracle in its strictest mode and the task-level final state is verified.
TEST(InvariantChecker, EndToEndTapsRunPassesStrictOracle) {
  test::Dumbbell d = test::make_dumbbell(4);
  net::Network net(*d.topology);
  test::add_task(net, 0.0, 10.0, {test::flow(d.left[0], d.right[0], 3.0)});
  test::add_task(net, 0.0, 10.0, {test::flow(d.left[1], d.right[1], 3.0)});
  test::add_task(net, 0.5, 12.0, {test::flow(d.left[2], d.right[2], 3.0)});

  core::TapsScheduler sched;
  InvariantConfig cfg;
  cfg.exclusive_links = true;
  InvariantChecker oracle(net, cfg);
  FluidSimulator sim(net, sched);
  sim.set_observer(&oracle);
  EXPECT_NO_THROW((void)sim.run());
  EXPECT_EQ(test::completed_tasks(net), 3u);
  EXPECT_GT(oracle.segments(), 0u);
  EXPECT_EQ(oracle.finished_flows(), 3u);
}

}  // namespace
}  // namespace taps::sim
