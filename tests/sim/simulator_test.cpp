#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "common/fixtures.hpp"
#include "sched/fair_sharing.hpp"

namespace taps::sim {
namespace {

using test::add_task;
using test::flow;
using test::make_dumbbell;

// A trivially simple scheduler: admits everything, routes on the first path,
// gives every active flow a fixed rate (oversubscription is the test's
// problem). Lets us test the engine in isolation from scheduling policy.
class FixedRateScheduler final : public Scheduler {
 public:
  explicit FixedRateScheduler(double rate) : rate_(rate) {}
  [[nodiscard]] std::string name() const override { return "fixed"; }

  void on_task_arrival(net::TaskId id, double now) override {
    net::Task& t = net_->task(id);
    t.state = net::TaskState::kAdmitted;
    for (const net::FlowId fid : t.spec.flows) {
      net::Flow& f = net_->flow(fid);
      if (f.state != net::FlowState::kPending || f.spec.arrival > now + kTimeEpsilon) {
        continue;  // later waves are admitted when their arrival fires
      }
      f.path = net_->topology().paths(f.spec.src, f.spec.dst, 1).at(0);
      f.state = net::FlowState::kActive;
    }
  }
  void on_flow_finished(net::FlowId, double) override {}
  double assign_rates(double) override {
    for (auto& f : net_->flows()) {
      if (f.active()) f.set_rate(rate_);
    }
    return kInfinity;
  }

 private:
  double rate_;
};

TEST(FluidSimulator, SingleFlowCompletesOnTime) {
  auto d = make_dumbbell();
  net::Network net(*d.topology);
  add_task(net, 0.0, 10.0, {flow(d.left[0], d.right[0], 4.0)});
  FixedRateScheduler sched(1.0);
  const SimStats stats = test::run(net, sched);

  EXPECT_EQ(stats.completions, 1u);
  EXPECT_EQ(stats.misses, 0u);
  const auto& f = net.flows()[0];
  EXPECT_EQ(f.state, net::FlowState::kCompleted);
  EXPECT_NEAR(f.completion_time, 4.0, 1e-9);
  EXPECT_NEAR(f.bytes_sent, 4.0, 1e-9);
  EXPECT_EQ(net.tasks()[0].state, net::TaskState::kCompleted);
}

TEST(FluidSimulator, FlowFinishingExactlyAtDeadlineCounts) {
  auto d = make_dumbbell();
  net::Network net(*d.topology);
  add_task(net, 0.0, 4.0, {flow(d.left[0], d.right[0], 4.0)});
  FixedRateScheduler sched(1.0);
  (void)test::run(net, sched);
  EXPECT_EQ(net.flows()[0].state, net::FlowState::kCompleted);
}

TEST(FluidSimulator, MissedDeadlineStopsTransmission) {
  auto d = make_dumbbell();
  net::Network net(*d.topology);
  add_task(net, 0.0, 2.0, {flow(d.left[0], d.right[0], 4.0)});
  FixedRateScheduler sched(1.0);
  const SimStats stats = test::run(net, sched);

  EXPECT_EQ(stats.misses, 1u);
  const auto& f = net.flows()[0];
  EXPECT_EQ(f.state, net::FlowState::kMissed);
  EXPECT_NEAR(f.bytes_sent, 2.0, 1e-9);  // stopped at the deadline
  EXPECT_NEAR(f.remaining, 2.0, 1e-9);
  EXPECT_EQ(net.tasks()[0].state, net::TaskState::kFailed);
}

TEST(FluidSimulator, LateArrivalStartsOnArrival) {
  auto d = make_dumbbell();
  net::Network net(*d.topology);
  add_task(net, 3.0, 10.0, {flow(d.left[0], d.right[0], 2.0)});
  FixedRateScheduler sched(1.0);
  const SimStats stats = test::run(net, sched);
  EXPECT_NEAR(net.flows()[0].completion_time, 5.0, 1e-9);
  EXPECT_NEAR(stats.end_time, 5.0, 1e-9);
}

TEST(FluidSimulator, TaskFailsIfAnyFlowMisses) {
  auto d = make_dumbbell();
  net::Network net(*d.topology);
  // Two flows; one can finish by the deadline, the other cannot.
  add_task(net, 0.0, 3.0,
           {flow(d.left[0], d.right[0], 1.0), flow(d.left[1], d.right[1], 9.0)});
  FixedRateScheduler sched(1.0);
  (void)test::run(net, sched);
  EXPECT_EQ(net.flows()[0].state, net::FlowState::kCompleted);
  EXPECT_EQ(net.flows()[1].state, net::FlowState::kMissed);
  EXPECT_EQ(net.tasks()[0].state, net::TaskState::kFailed);
}

TEST(FluidSimulator, ObserverSeesAllBytes) {
  class Sum final : public TransmitObserver {
   public:
    double total = 0.0;
    void on_transmit(const net::Flow&, double, double, double bytes) override {
      total += bytes;
    }
  };
  auto d = make_dumbbell();
  net::Network net(*d.topology);
  add_task(net, 0.0, 10.0, {flow(d.left[0], d.right[0], 4.0)});
  add_task(net, 1.0, 3.0, {flow(d.left[1], d.right[1], 5.0)});  // will miss
  FixedRateScheduler sched(1.0);
  Sum observer;
  FluidSimulator simulator(net, sched);
  simulator.set_observer(&observer);
  (void)simulator.run();

  double sent = 0.0;
  for (const auto& f : net.flows()) sent += f.bytes_sent;
  EXPECT_NEAR(observer.total, sent, 1e-9);
  EXPECT_NEAR(observer.total, 4.0 + 2.0, 1e-9);  // flow 2 sent [1,3) only
}

TEST(FluidSimulator, QuiescesWithNoTasks) {
  auto d = make_dumbbell();
  net::Network net(*d.topology);
  FixedRateScheduler sched(1.0);
  const SimStats stats = test::run(net, sched);
  EXPECT_EQ(stats.completions, 0u);
  EXPECT_DOUBLE_EQ(stats.end_time, 0.0);
}

TEST(FluidSimulator, ZeroRateFlowMissesAtDeadline) {
  auto d = make_dumbbell();
  net::Network net(*d.topology);
  add_task(net, 0.0, 2.0, {flow(d.left[0], d.right[0], 1.0)});
  FixedRateScheduler sched(0.0);  // never transmits
  const SimStats stats = test::run(net, sched);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_NEAR(stats.end_time, 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(net.flows()[0].bytes_sent, 0.0);
}

TEST(FluidSimulator, MidRunTaskExtensionIsPickedUpByBothEngines) {
  // Regression: the per-flow bookkeeping arrays used to be sized once before
  // the event loop, so a flow registered mid-run via Network::extend_task
  // indexed past their end (caught by ASan). The extension happens inside an
  // observer callback at the first wave, adding a flow to a wave the
  // simulator has already scheduled.
  class Extender final : public TransmitObserver {
   public:
    Extender(net::TaskId task, net::FlowSpec spec) : task_(task), spec_(spec) {}
    void on_transmit(const net::Flow&, double, double, double) override {}
    void on_task_arrival(const net::Task& t, double now) override {
      if (t.id() == task_ && now == 0.0 && !extended_) {
        extended_ = true;
        net_->extend_task(task_, 1.0, {&spec_, 1});
      }
    }
    net::Network* net_ = nullptr;

   private:
    net::TaskId task_;
    net::FlowSpec spec_;
    bool extended_ = false;
  };

  for (const SimEngine engine : {SimEngine::kReference, SimEngine::kIndexed}) {
    auto d = make_dumbbell();
    net::Network net(*d.topology);
    // Task 0 already has two waves (t=0 and t=1), so the wave list contains
    // the t=1 entry the extension flow will ride on.
    const net::TaskId tid = add_task(net, 0.0, 10.0, {flow(d.left[0], d.right[0], 2.0)});
    net.extend_task(tid, 1.0, std::vector<net::FlowSpec>{flow(d.left[1], d.right[1], 1.0)});
    Extender extender(tid, flow(d.left[2], d.right[2], 1.5));
    extender.net_ = &net;
    FixedRateScheduler sched(1.0);
    FluidSimulator simulator(net, sched, engine);
    simulator.set_observer(&extender);
    const SimStats stats = simulator.run();

    ASSERT_EQ(net.flows().size(), 3u) << to_string(engine);
    EXPECT_EQ(stats.completions, 3u) << to_string(engine);
    const net::Flow& added = net.flows()[2];
    EXPECT_EQ(added.state, net::FlowState::kCompleted) << to_string(engine);
    EXPECT_DOUBLE_EQ(added.spec.arrival, 1.0);
    EXPECT_NEAR(added.completion_time, 2.5, 1e-9) << to_string(engine);
    EXPECT_NEAR(added.bytes_sent, 1.5, 1e-9) << to_string(engine);
  }
}

TEST(FluidSimulator, RateChangeHookDrivesProgress) {
  // A scheduler that transmits only in [1,2): rate changes must be honored
  // through the assign_rates return value.
  class Windowed final : public Scheduler {
   public:
    [[nodiscard]] std::string name() const override { return "windowed"; }
    void on_task_arrival(net::TaskId id, double) override {
      net::Task& t = net_->task(id);
      t.state = net::TaskState::kAdmitted;
      for (const net::FlowId fid : t.spec.flows) {
        net::Flow& f = net_->flow(fid);
        f.path = net_->topology().paths(f.spec.src, f.spec.dst, 1).at(0);
        f.state = net::FlowState::kActive;
      }
    }
    void on_flow_finished(net::FlowId, double) override {}
    double assign_rates(double now) override {
      for (auto& f : net_->flows()) {
        if (!f.active()) continue;
        f.set_rate((now >= 1.0 && now < 2.0) ? 1.0 : 0.0);
      }
      if (now < 1.0) return 1.0;
      if (now < 2.0) return 2.0;
      return kInfinity;
    }
  };
  auto d = make_dumbbell();
  net::Network net(*d.topology);
  add_task(net, 0.0, 10.0, {flow(d.left[0], d.right[0], 1.0)});
  Windowed sched;
  (void)test::run(net, sched);
  EXPECT_EQ(net.flows()[0].state, net::FlowState::kCompleted);
  EXPECT_NEAR(net.flows()[0].completion_time, 2.0, 1e-9);
}

}  // namespace
}  // namespace taps::sim
