#include "exp/experiment.hpp"

#include <gtest/gtest.h>

#include "exp/sweep.hpp"

#include <filesystem>

#include "util/csv.hpp"

namespace taps::exp {
namespace {

workload::Scenario tiny_scenario() {
  workload::Scenario s = workload::Scenario::single_rooted(false);
  s.workload.task_count = 10;
  s.workload.flows_per_task_mean = 6.0;
  s.seed = 11;
  return s;
}

TEST(SchedulerRegistry, NamesRoundTrip) {
  for (const SchedulerKind k : all_schedulers()) {
    EXPECT_EQ(parse_scheduler(to_string(k)), k);
  }
  EXPECT_EQ(parse_scheduler("taps"), SchedulerKind::kTaps);
  EXPECT_EQ(parse_scheduler("FAIRSHARING"), SchedulerKind::kFairSharing);
  EXPECT_THROW((void)parse_scheduler("bogus"), std::invalid_argument);
}

TEST(SchedulerRegistry, FactoryProducesNamedSchedulers) {
  for (const SchedulerKind k : all_schedulers()) {
    const auto s = make_scheduler(k, 8);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->name(), to_string(k));
  }
}

TEST(Experiment, RunsEverySchedulerOnTinyScenario) {
  const workload::Scenario s = tiny_scenario();
  for (const SchedulerKind k : all_schedulers()) {
    const ExperimentResult r = run_experiment(s, k);
    EXPECT_EQ(r.metrics.tasks_total, 10u) << to_string(k);
    EXPECT_GE(r.metrics.task_completion_ratio, 0.0);
    EXPECT_LE(r.metrics.task_completion_ratio, 1.0);
    EXPECT_GT(r.stats.events, 0u);
  }
}

TEST(Experiment, DeterministicPerSeed) {
  const workload::Scenario s = tiny_scenario();
  const auto a = run_experiment(s, SchedulerKind::kTaps);
  const auto b = run_experiment(s, SchedulerKind::kTaps);
  EXPECT_DOUBLE_EQ(a.metrics.task_completion_ratio, b.metrics.task_completion_ratio);
  EXPECT_DOUBLE_EQ(a.metrics.useful_bytes, b.metrics.useful_bytes);
}

TEST(Experiment, TapsAndVarysNeverWasteBandwidth) {
  const workload::Scenario s = tiny_scenario();
  EXPECT_DOUBLE_EQ(run_experiment(s, SchedulerKind::kTaps).metrics.wasted_bandwidth_ratio,
                   0.0);
  EXPECT_DOUBLE_EQ(run_experiment(s, SchedulerKind::kVarys).metrics.wasted_bandwidth_ratio,
                   0.0);
}

TEST(Experiment, TapsTasksCompleteOrAreRejected) {
  const workload::Scenario s = tiny_scenario();
  const auto run = run_experiment_full(s, SchedulerKind::kTaps);
  for (const auto& t : run.network->tasks()) {
    EXPECT_TRUE(t.state == net::TaskState::kCompleted ||
                t.state == net::TaskState::kRejected);
  }
}

TEST(Experiment, TapsPlannerEffortCountersSurfaceInMetrics) {
  const workload::Scenario s = tiny_scenario();
  const auto taps = run_experiment(s, SchedulerKind::kTaps);
  EXPECT_GT(taps.metrics.replans, 0u);
  EXPECT_GT(taps.metrics.flows_planned, 0u);
  EXPECT_GE(taps.metrics.prefix_reuse_ratio, 0.0);
  EXPECT_LE(taps.metrics.prefix_reuse_ratio, 1.0);
  EXPECT_DOUBLE_EQ(
      taps.metrics.prefix_reuse_ratio,
      static_cast<double>(taps.metrics.prefix_reuse_flows) /
          static_cast<double>(taps.metrics.prefix_reuse_flows + taps.metrics.flows_planned));

  // The timeline decision counters surface regardless of any attached
  // recorder (they come from TapsCounters, not the observer).
  EXPECT_GT(taps.metrics.plan_commits, 0u);
  EXPECT_GT(taps.metrics.slice_grants, 0u);

  // Schedulers without a global replan report zero effort, not garbage.
  const auto fair = run_experiment(s, SchedulerKind::kFairSharing);
  EXPECT_EQ(fair.metrics.replans, 0u);
  EXPECT_EQ(fair.metrics.flows_planned, 0u);
  EXPECT_EQ(fair.metrics.prefix_reuse_flows, 0u);
  EXPECT_DOUBLE_EQ(fair.metrics.prefix_reuse_ratio, 0.0);
  EXPECT_EQ(fair.metrics.plan_commits, 0u);
  EXPECT_EQ(fair.metrics.preemptions, 0u);
  EXPECT_EQ(fair.metrics.slice_grants, 0u);
}

TEST(Experiment, ObserverReceivesSegments) {
  class Count final : public sim::TransmitObserver {
   public:
    std::size_t n = 0;
    void on_transmit(const net::Flow&, double, double, double) override { ++n; }
  };
  Count obs;
  const auto run = run_experiment_full(tiny_scenario(), SchedulerKind::kFairSharing, &obs);
  EXPECT_GT(obs.n, 0u);
}

TEST(Sweep, RunsAllCellsInOrder) {
  std::vector<SweepPoint> points;
  for (const double ms : {20.0, 40.0}) {
    workload::Scenario s = tiny_scenario();
    s.workload.mean_deadline = ms / 1000.0;
    points.push_back(SweepPoint{ms, s});
  }
  const std::vector<SchedulerKind> scheds{SchedulerKind::kFairSharing,
                                          SchedulerKind::kTaps};
  const SweepResult r = run_sweep(points, scheds, 2);
  ASSERT_EQ(r.cells.size(), 4u);
  EXPECT_DOUBLE_EQ(r.cell(0, 0, 2).x, 20.0);
  EXPECT_EQ(r.cell(0, 1, 2).scheduler, SchedulerKind::kTaps);
  EXPECT_DOUBLE_EQ(r.cell(1, 0, 2).x, 40.0);
}

TEST(Sweep, RepeatsAverageMetrics) {
  std::vector<SweepPoint> points{SweepPoint{1.0, tiny_scenario()}};
  const std::vector<SchedulerKind> scheds{SchedulerKind::kTaps};
  const SweepResult r = run_sweep(points, scheds, 1, 3);
  const auto& m = r.cells[0].result.metrics;
  EXPECT_EQ(m.tasks_total, 30u);  // summed over 3 repeats
  EXPECT_GE(m.task_completion_ratio, 0.0);
  EXPECT_LE(m.task_completion_ratio, 1.0);
}

TEST(Sweep, CsvRoundTrip) {
  std::vector<SweepPoint> points{SweepPoint{20.0, tiny_scenario()}};
  const std::vector<SchedulerKind> scheds{SchedulerKind::kFairSharing,
                                          SchedulerKind::kTaps};
  const SweepResult r = run_sweep(points, scheds, 1);
  const std::string path =
      (std::filesystem::temp_directory_path() / "taps_sweep_test.csv").string();
  write_sweep_csv(path, "deadline_ms", points, scheds, r);

  const auto rows = util::read_csv(path);
  ASSERT_EQ(rows.size(), 3u);  // header + 1 point x 2 schedulers
  EXPECT_EQ(rows[0][0], "deadline_ms");
  EXPECT_EQ(rows[1][1], "FairSharing");
  EXPECT_EQ(rows[2][1], "TAPS");
  // Metric column survives the round trip exactly.
  EXPECT_DOUBLE_EQ(std::stod(rows[2][2]),
                   r.cell(0, 1, 2).result.metrics.task_completion_ratio);
  // Planner-effort columns are present; TAPS reports real work, FairSharing zeros.
  const auto col = [&](const std::string& name) {
    for (std::size_t i = 0; i < rows[0].size(); ++i) {
      if (rows[0][i] == name) return i;
    }
    ADD_FAILURE() << "missing column " << name;
    return std::size_t{0};
  };
  EXPECT_GT(std::stoull(rows[2][col("replans")]), 0u);
  EXPECT_GT(std::stoull(rows[2][col("flows_planned")]), 0u);
  EXPECT_EQ(std::stoull(rows[1][col("replans")]), 0u);
  const double reuse = std::stod(rows[2][col("prefix_reuse_ratio")]);
  EXPECT_GE(reuse, 0.0);
  EXPECT_LE(reuse, 1.0);
  // Timeline decision columns: TAPS commits plans and grants slices;
  // FairSharing (no decision hooks) reports zeros.
  EXPECT_GT(std::stoull(rows[2][col("plan_commits")]), 0u);
  EXPECT_GT(std::stoull(rows[2][col("slice_grants")]), 0u);
  EXPECT_EQ(std::stoull(rows[1][col("plan_commits")]), 0u);
  EXPECT_EQ(std::stoull(rows[1][col("preemptions")]), 0u);
  EXPECT_EQ(std::stoull(rows[1][col("slice_grants")]), 0u);
  std::remove(path.c_str());
}

TEST(Sweep, CsvUnwritablePathThrows) {
  std::vector<SweepPoint> points{SweepPoint{1.0, tiny_scenario()}};
  const std::vector<SchedulerKind> scheds{SchedulerKind::kTaps};
  const SweepResult r = run_sweep(points, scheds, 1);
  EXPECT_THROW(write_sweep_csv("/nonexistent/dir/x.csv", "x", points, scheds, r),
               std::runtime_error);
}

TEST(Sweep, PrintTableShape) {
  std::vector<SweepPoint> points{SweepPoint{20.0, tiny_scenario()}};
  const std::vector<SchedulerKind> scheds{SchedulerKind::kFairSharing,
                                          SchedulerKind::kTaps};
  const SweepResult r = run_sweep(points, scheds, 1);
  std::ostringstream os;
  print_metric_table(os, "deadline-ms", points, scheds, r,
                     [](const metrics::RunMetrics& m) { return m.task_completion_ratio; });
  const std::string out = os.str();
  EXPECT_NE(out.find("deadline-ms"), std::string::npos);
  EXPECT_NE(out.find("TAPS"), std::string::npos);
  EXPECT_NE(out.find("20.0000"), std::string::npos);
}

}  // namespace
}  // namespace taps::exp
