// Determinism across thread counts: a sweep's results must depend only on
// the scenario seeds, never on worker scheduling. Catches RNG-sharing and
// thread-pool ordering bugs before parallel sweeps are trusted to produce
// benchmark baselines (docs/BENCHMARKING.md).
#include "exp/sweep.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "workload/scenario.hpp"

namespace taps::exp {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(SweepDeterminism, ThreadCountDoesNotChangeResults) {
  // Small but non-trivial: several points x schedulers x repeats, so cells
  // really do run concurrently in the 8-thread sweep.
  std::vector<SweepPoint> points;
  for (int i = 0; i < 4; ++i) {
    SweepPoint p;
    p.x = static_cast<double>(i);
    p.scenario = workload::Scenario::single_rooted(false);
    p.scenario.workload.task_count = 12;
    p.scenario.seed = util::hash_combine(1234, static_cast<std::uint64_t>(i));
    points.push_back(std::move(p));
  }
  const std::vector<SchedulerKind> scheds{SchedulerKind::kTaps, SchedulerKind::kFairSharing};

  const SweepResult serial = run_sweep(points, scheds, /*threads=*/1, /*repeats=*/2);
  const SweepResult parallel = run_sweep(points, scheds, /*threads=*/8, /*repeats=*/2);
  ASSERT_EQ(serial.cells.size(), parallel.cells.size());

  // Byte-identical CSVs (timing column excluded: wall clock is the one field
  // legitimately allowed to differ between runs).
  const std::string path1 = ::testing::TempDir() + "sweep_det_t1.csv";
  const std::string path8 = ::testing::TempDir() + "sweep_det_t8.csv";
  write_sweep_csv(path1, "x", points, scheds, serial, /*include_timing=*/false);
  write_sweep_csv(path8, "x", points, scheds, parallel, /*include_timing=*/false);

  const std::string bytes1 = read_file(path1);
  const std::string bytes8 = read_file(path8);
  EXPECT_FALSE(bytes1.empty());
  EXPECT_EQ(bytes1, bytes8) << "sweep output depends on the worker thread count";

  std::remove(path1.c_str());
  std::remove(path8.c_str());
}

}  // namespace
}  // namespace taps::exp
