#include "topo/tree.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace taps::topo {
namespace {

TEST(SingleRootedTree, ScaledDimensions) {
  const SingleRootedTree tree(SingleRootedConfig::scaled());
  const auto& cfg = tree.config();
  EXPECT_EQ(tree.host_count(),
            static_cast<std::size_t>(cfg.hosts_per_rack * cfg.racks_per_pod * cfg.pods));
  // nodes: hosts + tors + aggs + core
  const std::size_t tors = static_cast<std::size_t>(cfg.racks_per_pod) * cfg.pods;
  EXPECT_EQ(tree.graph().node_count(),
            tree.host_count() + tors + static_cast<std::size_t>(cfg.pods) + 1);
  // duplex links: one per child-parent pair
  EXPECT_EQ(tree.graph().link_count(),
            2 * (tree.host_count() + tors + static_cast<std::size_t>(cfg.pods)));
}

TEST(SingleRootedTree, PaperScaleCounts) {
  // Construction only — 36 000 hosts (paper Sec. V-A).
  const SingleRootedTree tree(SingleRootedConfig::paper());
  EXPECT_EQ(tree.host_count(), 36'000u);
}

TEST(SingleRootedTree, SameRackPathIsTwoHops) {
  const SingleRootedTree tree(SingleRootedConfig::scaled());
  const auto& hosts = tree.hosts();
  const auto paths = tree.paths(hosts[0], hosts[1], 4);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].hops(), 2u);  // host -> tor -> host
  EXPECT_TRUE(is_valid_path(tree.graph(), paths[0], hosts[0], hosts[1]));
}

TEST(SingleRootedTree, SamePodPathIsFourHops) {
  const SingleRootedConfig cfg = SingleRootedConfig::scaled();
  const SingleRootedTree tree(cfg);
  const auto& hosts = tree.hosts();
  // hosts are laid out rack-major: host 0 and host `hosts_per_rack` are in
  // different racks of the same pod.
  const auto paths =
      tree.paths(hosts[0], hosts[static_cast<std::size_t>(cfg.hosts_per_rack)], 4);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].hops(), 4u);  // host-tor-agg-tor-host
}

TEST(SingleRootedTree, CrossPodPathIsSixHops) {
  const SingleRootedConfig cfg = SingleRootedConfig::scaled();
  const SingleRootedTree tree(cfg);
  const auto& hosts = tree.hosts();
  const std::size_t per_pod =
      static_cast<std::size_t>(cfg.hosts_per_rack) * cfg.racks_per_pod;
  const auto paths = tree.paths(hosts[0], hosts[per_pod], 4);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].hops(), 6u);  // up to the root and down
}

TEST(SingleRootedTree, RandomPairsHaveOneValidPath) {
  const SingleRootedTree tree(SingleRootedConfig::scaled());
  const auto& hosts = tree.hosts();
  util::Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    const auto a = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(hosts.size()) - 1));
    auto b = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(hosts.size()) - 2));
    if (b >= a) ++b;
    const auto paths = tree.paths(hosts[a], hosts[b], 8);
    ASSERT_EQ(paths.size(), 1u);
    EXPECT_TRUE(is_valid_path(tree.graph(), paths[0], hosts[a], hosts[b]));
    EXPECT_LE(paths[0].hops(), 6u);
    EXPECT_GE(paths[0].hops(), 2u);
  }
}

TEST(SingleRootedTree, MaxPathsZeroReturnsNothing) {
  const SingleRootedTree tree(SingleRootedConfig::scaled());
  const auto& hosts = tree.hosts();
  EXPECT_TRUE(tree.paths(hosts[0], hosts[1], 0).empty());
}

TEST(SingleRootedTree, RejectsBadConfig) {
  SingleRootedConfig cfg = SingleRootedConfig::scaled();
  cfg.pods = 0;
  EXPECT_THROW(SingleRootedTree{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace taps::topo
