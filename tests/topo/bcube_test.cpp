#include "topo/bcube.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/rng.hpp"

namespace taps::topo {
namespace {

TEST(BCube, DimensionsN4K1) {
  const BCube b(BCubeConfig{4, 1, 1.0});
  EXPECT_EQ(b.host_count(), 16u);  // n^(k+1)
  // 2 levels x 4 switches + 16 servers.
  EXPECT_EQ(b.graph().node_count(), 16u + 8u);
  // Each server has k+1 = 2 duplex links.
  EXPECT_EQ(b.graph().link_count(), 2u * 2u * 16u);
}

TEST(BCube, RejectsBadConfig) {
  EXPECT_THROW(BCube(BCubeConfig{1, 1, 1.0}), std::invalid_argument);
  EXPECT_THROW(BCube(BCubeConfig{4, -1, 1.0}), std::invalid_argument);
  EXPECT_THROW(BCube(BCubeConfig{2, 4, 1.0}), std::invalid_argument);
}

TEST(BCube, SameSwitchPairHasOnePath) {
  const BCube b(BCubeConfig{4, 1, 1.0});
  // Servers 0 and 1 differ only in digit 0: one 2-hop path via level-0
  // switch (rotations of a single correction coincide).
  const auto paths = b.paths(b.server(0), b.server(1), 8);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].hops(), 2u);
}

TEST(BCube, FullyDifferentPairHasKPlus1Paths) {
  const BCube b(BCubeConfig{4, 1, 1.0});
  // Servers 0 (digits 0,0) and 5 (digits 1,1) differ in both digits:
  // k+1 = 2 parallel paths of 4 hops.
  const auto paths = b.paths(b.server(0), b.server(5), 8);
  ASSERT_EQ(paths.size(), 2u);
  for (const auto& p : paths) {
    EXPECT_EQ(p.hops(), 4u);
    EXPECT_TRUE(is_valid_path(b.graph(), p, b.server(0), b.server(5)));
  }
  // Paths are link-disjoint (the BCube parallel-paths property).
  std::set<LinkId> first(paths[0].links.begin(), paths[0].links.end());
  for (const LinkId lid : paths[1].links) EXPECT_EQ(first.count(lid), 0u);
}

TEST(BCube, ServerCentricPathsRelayThroughServers) {
  const BCube b(BCubeConfig{4, 1, 1.0});
  const auto paths = b.paths(b.server(0), b.server(5), 8);
  ASSERT_FALSE(paths.empty());
  // A 4-hop path visits one intermediate *server* (BCube's signature).
  const auto& p = paths[0];
  const NodeId mid = b.graph().link(p.links[1]).dst;
  EXPECT_EQ(b.graph().node(mid).kind, NodeKind::kHost);
}

TEST(BCube, RandomPairsValidOnLargerInstance) {
  const BCube b(BCubeConfig{3, 2, 1.0});  // 27 servers, 3 levels
  util::Rng rng(17);
  const auto& hosts = b.hosts();
  for (int i = 0; i < 100; ++i) {
    const auto x = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(hosts.size()) - 1));
    auto y = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(hosts.size()) - 2));
    if (y >= x) ++y;
    const auto paths = b.paths(hosts[x], hosts[y], 8);
    ASSERT_FALSE(paths.empty());
    std::set<std::vector<LinkId>> unique;
    for (const auto& p : paths) {
      EXPECT_TRUE(is_valid_path(b.graph(), p, hosts[x], hosts[y]));
      unique.insert(p.links);
    }
    EXPECT_EQ(unique.size(), paths.size());
  }
}

TEST(BCube, MaxPathsCap) {
  const BCube b(BCubeConfig{4, 2, 1.0});  // up to 3 parallel paths
  const auto paths = b.paths(b.server(0), b.server(63), 2);
  EXPECT_EQ(paths.size(), 2u);
}

}  // namespace
}  // namespace taps::topo
