#include "topo/graph.hpp"

#include <gtest/gtest.h>

namespace taps::topo {
namespace {

TEST(Graph, AddNodesAndLinks) {
  Graph g;
  const NodeId a = g.add_node(NodeKind::kHost, "a");
  const NodeId b = g.add_node(NodeKind::kTor, "b");
  EXPECT_EQ(g.node_count(), 2u);
  EXPECT_EQ(g.node(a).kind, NodeKind::kHost);
  EXPECT_EQ(g.node(b).name, "b");

  const LinkId l = g.add_link(a, b, 100.0);
  EXPECT_EQ(g.link_count(), 1u);
  EXPECT_EQ(g.link(l).src, a);
  EXPECT_EQ(g.link(l).dst, b);
  EXPECT_DOUBLE_EQ(g.link(l).capacity, 100.0);
}

TEST(Graph, DuplexAddsBothDirections) {
  Graph g;
  const NodeId a = g.add_node(NodeKind::kHost, "a");
  const NodeId b = g.add_node(NodeKind::kHost, "b");
  const LinkId fwd = g.add_duplex_link(a, b, 5.0);
  EXPECT_EQ(g.link_count(), 2u);
  EXPECT_EQ(g.link(fwd).src, a);
  EXPECT_EQ(g.link_between(a, b), fwd);
  const LinkId rev = g.link_between(b, a);
  ASSERT_NE(rev, kInvalidLink);
  EXPECT_EQ(g.link(rev).src, b);
  EXPECT_NE(fwd, rev);
}

TEST(Graph, LinkBetweenMissing) {
  Graph g;
  const NodeId a = g.add_node(NodeKind::kHost, "a");
  const NodeId b = g.add_node(NodeKind::kHost, "b");
  EXPECT_EQ(g.link_between(a, b), kInvalidLink);
}

TEST(Graph, OutLinks) {
  Graph g;
  const NodeId a = g.add_node(NodeKind::kHost, "a");
  const NodeId b = g.add_node(NodeKind::kHost, "b");
  const NodeId c = g.add_node(NodeKind::kHost, "c");
  g.add_link(a, b, 1.0);
  g.add_link(a, c, 1.0);
  g.add_link(b, c, 1.0);
  EXPECT_EQ(g.out_links(a).size(), 2u);
  EXPECT_EQ(g.out_links(b).size(), 1u);
  EXPECT_TRUE(g.out_links(c).empty());
}

TEST(Graph, NodeKindNames) {
  EXPECT_STREQ(to_string(NodeKind::kHost), "host");
  EXPECT_STREQ(to_string(NodeKind::kTor), "tor");
  EXPECT_STREQ(to_string(NodeKind::kAggregation), "agg");
  EXPECT_STREQ(to_string(NodeKind::kCore), "core");
}

TEST(Path, Validation) {
  Graph g;
  const NodeId a = g.add_node(NodeKind::kHost, "a");
  const NodeId s = g.add_node(NodeKind::kTor, "s");
  const NodeId b = g.add_node(NodeKind::kHost, "b");
  const LinkId l1 = g.add_link(a, s, 1.0);
  const LinkId l2 = g.add_link(s, b, 1.0);

  Path p;
  p.links = {l1, l2};
  EXPECT_TRUE(is_valid_path(g, p, a, b));
  EXPECT_FALSE(is_valid_path(g, p, b, a));   // wrong direction
  EXPECT_FALSE(is_valid_path(g, p, a, s));   // wrong endpoint

  Path broken;
  broken.links = {l2, l1};  // not a chain from a
  EXPECT_FALSE(is_valid_path(g, broken, a, b));

  Path empty;
  EXPECT_FALSE(is_valid_path(g, empty, a, b));
}

}  // namespace
}  // namespace taps::topo
