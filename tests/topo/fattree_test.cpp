#include "topo/fattree.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/rng.hpp"

namespace taps::topo {
namespace {

TEST(FatTree, DimensionsK4) {
  const FatTree ft(FatTreeConfig{4, kGigabitPerSecond});
  EXPECT_EQ(ft.host_count(), 16u);                 // k^3/4
  EXPECT_EQ(ft.graph().node_count(), 16u + 8 + 8 + 4);  // hosts+edge+agg+core
  // links (duplex => x2): host-edge 16, edge-agg 4 pods * 2*2, agg-core 4*2*2
  EXPECT_EQ(ft.graph().link_count(), 2u * (16 + 16 + 16));
}

TEST(FatTree, DimensionsK8) {
  const FatTree ft(FatTreeConfig::scaled());
  EXPECT_EQ(ft.k(), 8);
  EXPECT_EQ(ft.host_count(), 128u);  // 8^3/4
}

TEST(FatTree, RejectsOddK) {
  EXPECT_THROW(FatTree(FatTreeConfig{5, 1.0}), std::invalid_argument);
  EXPECT_THROW(FatTree(FatTreeConfig{0, 1.0}), std::invalid_argument);
}

TEST(FatTree, SameEdgePairHasOnePath) {
  const FatTree ft(FatTreeConfig{4, 1.0});
  const auto paths = ft.paths(ft.host(0, 0, 0), ft.host(0, 0, 1), 64);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].hops(), 2u);
}

TEST(FatTree, SamePodPairHasHalfKPaths) {
  const FatTree ft(FatTreeConfig{4, 1.0});
  const auto paths = ft.paths(ft.host(0, 0, 0), ft.host(0, 1, 0), 64);
  ASSERT_EQ(paths.size(), 2u);  // k/2 aggregation switches
  for (const auto& p : paths) {
    EXPECT_EQ(p.hops(), 4u);
    EXPECT_TRUE(is_valid_path(ft.graph(), p, ft.host(0, 0, 0), ft.host(0, 1, 0)));
  }
}

TEST(FatTree, CrossPodPairHasQuarterKSquaredPaths) {
  const FatTree ft(FatTreeConfig{4, 1.0});
  const auto paths = ft.paths(ft.host(0, 0, 0), ft.host(2, 1, 1), 64);
  ASSERT_EQ(paths.size(), 4u);  // (k/2)^2 core switches
  std::set<std::vector<LinkId>> unique;
  for (const auto& p : paths) {
    EXPECT_EQ(p.hops(), 6u);
    EXPECT_TRUE(is_valid_path(ft.graph(), p, ft.host(0, 0, 0), ft.host(2, 1, 1)));
    unique.insert(p.links);
  }
  EXPECT_EQ(unique.size(), paths.size());  // all distinct
}

TEST(FatTree, CrossPodPathsTraverseDistinctCores) {
  const FatTree ft(FatTreeConfig{8, 1.0});
  const auto paths = ft.paths(ft.host(0, 0, 0), ft.host(7, 3, 3), 1024);
  ASSERT_EQ(paths.size(), 16u);  // (8/2)^2
  // Each path's middle node (dst of hop 3) is a distinct core switch.
  std::set<NodeId> cores;
  for (const auto& p : paths) {
    const NodeId core = ft.graph().link(p.links[2]).dst;
    EXPECT_EQ(ft.graph().node(core).kind, NodeKind::kCore);
    cores.insert(core);
  }
  EXPECT_EQ(cores.size(), 16u);
}

TEST(FatTree, MaxPathsCapsEnumeration) {
  const FatTree ft(FatTreeConfig{8, 1.0});
  const auto paths = ft.paths(ft.host(0, 0, 0), ft.host(1, 0, 0), 3);
  EXPECT_EQ(paths.size(), 3u);
}

TEST(FatTree, HostMetadataConsistent) {
  const FatTree ft(FatTreeConfig{4, 1.0});
  for (int p = 0; p < 4; ++p) {
    for (int e = 0; e < 2; ++e) {
      for (int h = 0; h < 2; ++h) {
        const NodeId host = ft.host(p, e, h);
        EXPECT_EQ(ft.pod_of_host(host), p);
        EXPECT_EQ(ft.edge_of_host(host), ft.edge_switch(p, e));
      }
    }
  }
}

TEST(FatTree, RandomPairsYieldValidPaths) {
  const FatTree ft(FatTreeConfig::scaled());
  util::Rng rng(7);
  const auto& hosts = ft.hosts();
  for (int i = 0; i < 100; ++i) {
    const auto a = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(hosts.size()) - 1));
    auto b = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(hosts.size()) - 2));
    if (b >= a) ++b;
    const auto paths = ft.paths(hosts[a], hosts[b], 16);
    ASSERT_FALSE(paths.empty());
    for (const auto& p : paths) {
      EXPECT_TRUE(is_valid_path(ft.graph(), p, hosts[a], hosts[b]));
    }
  }
}

}  // namespace
}  // namespace taps::topo
