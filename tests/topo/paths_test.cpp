#include "topo/paths.hpp"

#include <gtest/gtest.h>

#include <set>

#include "topo/partial_fattree.hpp"

namespace taps::topo {
namespace {

// Diamond: a -> {x, y} -> b, both 2-hop.
struct Diamond {
  Graph g;
  NodeId a, b, x, y;
};

Diamond make_diamond() {
  Diamond d;
  d.a = d.g.add_node(NodeKind::kHost, "a");
  d.b = d.g.add_node(NodeKind::kHost, "b");
  d.x = d.g.add_node(NodeKind::kTor, "x");
  d.y = d.g.add_node(NodeKind::kTor, "y");
  d.g.add_duplex_link(d.a, d.x, 1.0);
  d.g.add_duplex_link(d.a, d.y, 1.0);
  d.g.add_duplex_link(d.x, d.b, 1.0);
  d.g.add_duplex_link(d.y, d.b, 1.0);
  return d;
}

TEST(AllShortestPaths, FindsBothDiamondArms) {
  Diamond d = make_diamond();
  const auto paths = all_shortest_paths(d.g, d.a, d.b, 16);
  ASSERT_EQ(paths.size(), 2u);
  for (const auto& p : paths) {
    EXPECT_EQ(p.hops(), 2u);
    EXPECT_TRUE(is_valid_path(d.g, p, d.a, d.b));
  }
}

TEST(AllShortestPaths, IgnoresLongerRoutes) {
  Diamond d = make_diamond();
  // Add a longer detour a -> z -> x (3 hops to b via z): must not appear.
  const NodeId z = d.g.add_node(NodeKind::kTor, "z");
  d.g.add_duplex_link(d.a, z, 1.0);
  d.g.add_duplex_link(z, d.x, 1.0);
  const auto paths = all_shortest_paths(d.g, d.a, d.b, 16);
  EXPECT_EQ(paths.size(), 2u);
}

TEST(AllShortestPaths, DisconnectedReturnsEmpty) {
  Graph g;
  const NodeId a = g.add_node(NodeKind::kHost, "a");
  const NodeId b = g.add_node(NodeKind::kHost, "b");
  EXPECT_TRUE(all_shortest_paths(g, a, b, 4).empty());
}

TEST(AllShortestPaths, RespectsMaxPaths) {
  Diamond d = make_diamond();
  EXPECT_EQ(all_shortest_paths(d.g, d.a, d.b, 1).size(), 1u);
  EXPECT_TRUE(all_shortest_paths(d.g, d.a, d.b, 0).empty());
}

TEST(AllShortestPaths, DirectedEdgesOnly) {
  Graph g;
  const NodeId a = g.add_node(NodeKind::kHost, "a");
  const NodeId b = g.add_node(NodeKind::kHost, "b");
  g.add_link(b, a, 1.0);  // only the reverse direction exists
  EXPECT_TRUE(all_shortest_paths(g, a, b, 4).empty());
  EXPECT_EQ(all_shortest_paths(g, b, a, 4).size(), 1u);
}

TEST(PickEcmp, DeterministicAndInRange) {
  Diamond d = make_diamond();
  const auto paths = all_shortest_paths(d.g, d.a, d.b, 16);
  const Path& p1 = pick_ecmp(paths, 12345);
  const Path& p2 = pick_ecmp(paths, 12345);
  EXPECT_EQ(p1, p2);
  // Different hashes cover both paths eventually.
  std::set<std::vector<LinkId>> seen;
  for (std::uint64_t h = 0; h < 16; ++h) seen.insert(pick_ecmp(paths, h).links);
  EXPECT_EQ(seen.size(), 2u);
}

TEST(PickEcmp, EmptyThrows) {
  std::vector<Path> none;
  EXPECT_THROW((void)pick_ecmp(none, 1), std::logic_error);
}

TEST(GenericTopology, WrapsGraph) {
  Diamond d = make_diamond();
  std::vector<NodeId> hosts{d.a, d.b};
  const GenericTopology topo(std::move(d.g), hosts, "diamond");
  EXPECT_EQ(topo.name(), "diamond");
  EXPECT_EQ(topo.host_count(), 2u);
  EXPECT_EQ(topo.paths(d.a, d.b, 8).size(), 2u);
}

TEST(PartialFatTree, TestbedShape) {
  const PartialFatTree t;
  EXPECT_EQ(t.host_count(), 8u);  // paper Fig. 13
  // 2 cores + 2 pods * (2 agg + 2 edge) + 8 hosts
  EXPECT_EQ(t.graph().node_count(), 2u + 2 * 4 + 8);
}

TEST(PartialFatTree, IntraPodTwoPaths) {
  const PartialFatTree t;
  // hosts 0,1 share an edge switch; hosts 0,2 are different edges, same pod.
  const auto& hosts = t.hosts();
  EXPECT_EQ(t.paths(hosts[0], hosts[1], 8).size(), 1u);
  const auto same_pod = t.paths(hosts[0], hosts[2], 8);
  EXPECT_EQ(same_pod.size(), 2u);  // via either aggregation switch
}

TEST(PartialFatTree, InterPodTwoPaths) {
  const PartialFatTree t;
  const auto& hosts = t.hosts();
  const auto cross = t.paths(hosts[0], hosts[4], 8);
  EXPECT_EQ(cross.size(), 2u);  // agg0-core0 or agg1-core1
  for (const auto& p : cross) {
    EXPECT_EQ(p.hops(), 6u);
    EXPECT_TRUE(is_valid_path(t.graph(), p, hosts[0], hosts[4]));
  }
}

}  // namespace
}  // namespace taps::topo
