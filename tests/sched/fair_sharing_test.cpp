#include "sched/fair_sharing.hpp"

#include <gtest/gtest.h>

#include "common/fixtures.hpp"
#include "util/rng.hpp"

namespace taps::sched {
namespace {

using test::add_task;
using test::flow;
using test::make_dumbbell;

// Paper Fig. 1(a): two tasks, four flows, one bottleneck, unit capacity.
//   t1: f11 (size 2, d 4), f12 (size 4, d 4)
//   t2: f21 (size 1, d 4), f22 (size 3, d 4)
struct Fig1 {
  test::Dumbbell d = make_dumbbell();
  net::Network net{*d.topology};
  Fig1() {
    add_task(net, 0.0, 4.0,
             {flow(d.left[0], d.right[0], 2.0), flow(d.left[1], d.right[1], 4.0)});
    add_task(net, 0.0, 4.0,
             {flow(d.left[2], d.right[2], 1.0), flow(d.left[3], d.right[3], 3.0)});
  }
};

TEST(FairSharing, Fig1bOneFlowNoTasks) {
  Fig1 s;
  FairSharing sched;
  (void)test::run(s.net, sched);
  // Equal quarters of the bottleneck: only the 1-unit flow finishes (exactly
  // at its deadline); no task completes — the paper's Fig. 1(b).
  EXPECT_EQ(test::completed_flows(s.net), 1u);
  EXPECT_EQ(s.net.flows()[2].state, net::FlowState::kCompleted);  // f21
  EXPECT_EQ(test::completed_tasks(s.net), 0u);
}

TEST(FairSharing, EqualSharesOnSingleBottleneck) {
  Fig1 s;
  FairSharing sched;
  sim::FluidSimulator simulator(s.net, sched);
  // Run manually to inspect rates at t=0+: all four flows share equally.
  (void)simulator.run();
  // After completion, rates are reset; instead verify the timing outcome:
  // f21 (1 unit at 1/4) completed exactly at t=4.
  EXPECT_NEAR(s.net.flows()[2].completion_time, 4.0, 1e-9);
}

TEST(FairSharing, SingleFlowGetsFullCapacity) {
  auto d = make_dumbbell();
  net::Network net(*d.topology);
  add_task(net, 0.0, 10.0, {flow(d.left[0], d.right[0], 3.0)});
  FairSharing sched;
  (void)test::run(net, sched);
  EXPECT_NEAR(net.flows()[0].completion_time, 3.0, 1e-9);
}

TEST(FairSharing, ReleasedBandwidthSpeedsUpSurvivors) {
  auto d = make_dumbbell();
  net::Network net(*d.topology);
  add_task(net, 0.0, 100.0, {flow(d.left[0], d.right[0], 1.0)});
  add_task(net, 0.0, 100.0, {flow(d.left[1], d.right[1], 3.0)});
  FairSharing sched;
  (void)test::run(net, sched);
  // Both at 1/2 until t=2 (flow 1 done), then flow 2 alone at rate 1:
  // remaining 2 units -> completes at t = 2 + 2 = 4.
  EXPECT_NEAR(net.flows()[0].completion_time, 2.0, 1e-9);
  EXPECT_NEAR(net.flows()[1].completion_time, 4.0, 1e-9);
}

TEST(FairSharing, LocalFlowsDoNotShareBottleneck) {
  auto d = make_dumbbell();
  net::Network net(*d.topology);
  // One cross flow and one rack-local flow (left[1] -> left[2] stays at s1).
  add_task(net, 0.0, 100.0, {flow(d.left[0], d.right[0], 2.0)});
  add_task(net, 0.0, 100.0, {flow(d.left[1], d.left[2], 2.0)});
  FairSharing sched;
  (void)test::run(net, sched);
  // Disjoint paths: both complete at full rate.
  EXPECT_NEAR(net.flows()[0].completion_time, 2.0, 1e-9);
  EXPECT_NEAR(net.flows()[1].completion_time, 2.0, 1e-9);
}

// Max-min property on random dumbbell instances: the allocation the
// scheduler computes must not allow any flow to be sped up without slowing a
// flow with an equal-or-smaller rate (checked indirectly: bottleneck fully
// used, equal split among bottlenecked flows).
class FairShareProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(FairShareProperty, BottleneckSaturatedAndFair) {
  util::Rng rng(GetParam());
  auto d = make_dumbbell(6);
  net::Network net(*d.topology);
  const int flows = static_cast<int>(rng.uniform_int(2, 5));
  std::vector<net::FlowSpec> specs;
  for (int i = 0; i < flows; ++i) {
    specs.push_back(flow(d.left[static_cast<std::size_t>(i)],
                         d.right[static_cast<std::size_t>(i)],
                         rng.uniform_real(1.0, 5.0)));
  }
  add_task(net, 0.0, 1000.0, specs);

  FairSharing sched;
  sched.bind(net);
  sched.on_task_arrival(0, 0.0);
  (void)sched.assign_rates(0.0);

  double total = 0.0;
  for (const auto& f : net.flows()) {
    EXPECT_NEAR(f.rate, 1.0 / flows, 1e-9);  // equal split
    total += f.rate;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);  // bottleneck saturated
}

INSTANTIATE_TEST_SUITE_P(Seeds, FairShareProperty, ::testing::Values(1u, 2u, 3u, 5u, 8u));

}  // namespace
}  // namespace taps::sched
