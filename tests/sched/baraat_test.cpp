#include "sched/baraat.hpp"

#include <gtest/gtest.h>

#include "common/fixtures.hpp"

namespace taps::sched {
namespace {

using test::add_task;
using test::flow;
using test::make_dumbbell;

// Paper Fig. 2(a): t1: two unit flows, deadline 4; t2: two unit flows,
// deadline 2. All arrive together.
struct Fig2 {
  test::Dumbbell d = make_dumbbell();
  net::Network net{*d.topology};
  Fig2() {
    add_task(net, 0.0, 4.0,
             {flow(d.left[0], d.right[0], 1.0), flow(d.left[1], d.right[1], 1.0)});
    add_task(net, 0.0, 2.0,
             {flow(d.left[2], d.right[2], 1.0), flow(d.left[3], d.right[3], 1.0)});
  }
};

TEST(Baraat, Fig2bUrgentLateTaskStarves) {
  // FIFO task serialization: t1 (arrived first by id) monopolizes the
  // bottleneck until t=2; t2's deadline is 2, so t2 fails entirely.
  // (The paper's Fig. 2(b) prose says Baraat "fails all the tasks", but t1 —
  // two unit flows against deadline 4 — mathematically completes by t=2;
  // see EXPERIMENTS.md. The essential claim holds: the urgent task dies.)
  Fig2 s;
  Baraat sched;
  (void)test::run(s.net, sched);

  EXPECT_EQ(s.net.tasks()[0].state, net::TaskState::kCompleted);
  EXPECT_EQ(s.net.tasks()[1].state, net::TaskState::kFailed);
  EXPECT_EQ(s.net.flows()[2].state, net::FlowState::kMissed);
  EXPECT_EQ(s.net.flows()[3].state, net::FlowState::kMissed);
}

TEST(Baraat, TaskFifoOrderBeatsDeadlines) {
  // Deadline-agnostic: even an impossibly tight later task never preempts.
  auto d = make_dumbbell();
  net::Network net(*d.topology);
  add_task(net, 0.0, 100.0, {flow(d.left[0], d.right[0], 5.0)});
  add_task(net, 1.0, 2.5, {flow(d.left[1], d.right[1], 1.0)});
  Baraat sched;
  (void)test::run(net, sched);
  EXPECT_EQ(net.flows()[1].state, net::FlowState::kMissed);
  EXPECT_EQ(net.tasks()[0].state, net::TaskState::kCompleted);
}

TEST(Baraat, SjfInsideTask) {
  auto d = make_dumbbell();
  net::Network net(*d.topology);
  add_task(net, 0.0, 100.0,
           {flow(d.left[0], d.right[0], 3.0), flow(d.left[1], d.right[1], 1.0)});
  Baraat sched;
  (void)test::run(net, sched);
  // Smaller flow first: completes at 1; larger at 4.
  EXPECT_NEAR(net.flows()[1].completion_time, 1.0, 1e-9);
  EXPECT_NEAR(net.flows()[0].completion_time, 4.0, 1e-9);
}

TEST(Baraat, WastesBandwidthOnDoomedFlows) {
  // No deadline awareness: a flow that cannot finish still transmits until
  // its deadline passes (the waste Fig. 8 charges to Baraat).
  auto d = make_dumbbell();
  net::Network net(*d.topology);
  add_task(net, 0.0, 2.0, {flow(d.left[0], d.right[0], 10.0)});
  Baraat sched;
  (void)test::run(net, sched);
  const auto& f = net.flows()[0];
  EXPECT_EQ(f.state, net::FlowState::kMissed);
  EXPECT_NEAR(f.bytes_sent, 2.0, 1e-9);  // transmitted right up to deadline
}

TEST(Baraat, SecondTaskUsesDisjointLinks) {
  // Task serialization is per-link, not global: flows of a later task run
  // immediately when they do not collide with the head task.
  auto d = make_dumbbell();
  net::Network net(*d.topology);
  add_task(net, 0.0, 100.0, {flow(d.left[0], d.right[0], 4.0)});
  add_task(net, 0.0, 100.0, {flow(d.left[1], d.left[2], 2.0)});  // rack-local
  Baraat sched;
  (void)test::run(net, sched);
  EXPECT_NEAR(net.flows()[1].completion_time, 2.0, 1e-9);
}

}  // namespace
}  // namespace taps::sched
