#include "sched/d2tcp.hpp"

#include <gtest/gtest.h>

#include "common/fixtures.hpp"

namespace taps::sched {
namespace {

using test::add_task;
using test::flow;
using test::make_dumbbell;

TEST(D2Tcp, SingleFlowGetsFullCapacity) {
  auto d = make_dumbbell();
  net::Network net(*d.topology);
  add_task(net, 0.0, 10.0, {flow(d.left[0], d.right[0], 3.0)});
  D2Tcp sched;
  (void)test::run(net, sched);
  EXPECT_NEAR(net.flows()[0].completion_time, 3.0, 1e-9);
}

TEST(D2Tcp, UrgentFlowGetsLargerShare) {
  auto d = make_dumbbell();
  net::Network net(*d.topology);
  // Same size, very different deadlines: urgency clamps to 2.0 vs 0.5, so
  // the urgent flow should get ~4x the relaxed flow's rate.
  add_task(net, 0.0, 2.5, {flow(d.left[0], d.right[0], 2.0)});   // urgent
  add_task(net, 0.0, 100.0, {flow(d.left[1], d.right[1], 2.0)});  // relaxed
  D2Tcp sched;
  sched.bind(net);
  sched.on_task_arrival(0, 0.0);
  sched.on_task_arrival(1, 0.0);
  (void)sched.assign_rates(0.0);
  // First pass seeds both at line-rate throughput: urgent d = (2/1)/2.5 = 0.8,
  // relaxed d = (2/1)/100 = 0.02 -> clamped 0.5. Shares 0.8 : 0.5.
  EXPECT_GT(net.flows()[0].rate, net.flows()[1].rate);
  EXPECT_NEAR(net.flows()[0].rate + net.flows()[1].rate, 1.0, 1e-9);  // saturating
  EXPECT_NEAR(net.flows()[0].rate / net.flows()[1].rate, 0.8 / 0.5, 1e-6);
}

TEST(D2Tcp, UrgencySavesTightFlowThatFairSharingLoses) {
  auto build = [](net::Network& net, test::Dumbbell& d) {
    // Three flows; the tight one needs 0.40 of the link on average but fair
    // sharing gives it only 1/3. D2TCP's urgency feedback (weight d vs the
    // relaxed flows' clamped 0.5) settles at a share of ~0.46, enough to
    // finish. (Much tighter flows exceed the d<=2 equilibrium and miss under
    // D2TCP too — it has no admission control.)
    add_task(net, 0.0, 5.0, {flow(d.left[0], d.right[0], 2.0)});
    add_task(net, 0.0, 100.0, {flow(d.left[1], d.right[1], 2.0)});
    add_task(net, 0.0, 100.0, {flow(d.left[2], d.right[2], 2.0)});
  };
  auto d1 = make_dumbbell();
  net::Network fair_net(*d1.topology);
  build(fair_net, d1);
  const auto fair = exp::make_scheduler(exp::SchedulerKind::kFairSharing, 16);
  (void)test::run(fair_net, *fair);
  EXPECT_EQ(fair_net.flows()[0].state, net::FlowState::kMissed);

  auto d2 = make_dumbbell();
  net::Network d2tcp_net(*d2.topology);
  build(d2tcp_net, d2);
  D2Tcp sched;
  (void)test::run(d2tcp_net, sched);
  EXPECT_EQ(d2tcp_net.flows()[0].state, net::FlowState::kCompleted);
}

TEST(D2Tcp, StillWastesBandwidthOnDoomedFlows) {
  // No admission control: an impossible flow transmits until its deadline.
  auto d = make_dumbbell();
  net::Network net(*d.topology);
  add_task(net, 0.0, 2.0, {flow(d.left[0], d.right[0], 10.0)});
  D2Tcp sched;
  (void)test::run(net, sched);
  EXPECT_EQ(net.flows()[0].state, net::FlowState::kMissed);
  EXPECT_NEAR(net.flows()[0].bytes_sent, 2.0, 1e-9);
}

TEST(D2Tcp, RegistryRoundTrip) {
  EXPECT_EQ(exp::parse_scheduler("d2tcp"), exp::SchedulerKind::kD2Tcp);
  const auto s = exp::make_scheduler(exp::SchedulerKind::kD2Tcp, 16);
  EXPECT_EQ(s->name(), "D2TCP");
  // The paper's evaluated set stays six; the extended set adds D2TCP.
  EXPECT_EQ(exp::all_schedulers().size(), 6u);
  EXPECT_EQ(exp::extended_schedulers().size(), 7u);
}

TEST(D2Tcp, FullWorkloadRunsClean) {
  const auto topology = workload::make_topology(workload::Scenario::single_rooted(false));
  net::Network net(*topology);
  workload::WorkloadConfig wc;
  wc.task_count = 15;
  wc.flows_per_task_mean = 8.0;
  util::Rng rng(3);
  (void)workload::generate(net, wc, rng);
  D2Tcp sched;
  (void)test::run(net, sched);
  for (const auto& f : net.flows()) {
    EXPECT_TRUE(f.finished());
    EXPECT_NEAR(f.bytes_sent + f.remaining, f.spec.size, 1e-3);
  }
}

}  // namespace
}  // namespace taps::sched
