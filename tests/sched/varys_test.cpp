#include "sched/varys.hpp"

#include <gtest/gtest.h>

#include "common/fixtures.hpp"

namespace taps::sched {
namespace {

using test::add_task;
using test::flow;
using test::make_dumbbell;

TEST(Varys, Fig2cRejectsLateUrgentTask) {
  // Paper Fig. 2(c): t1 (deadline 4) reserves first; t2's (deadline 2)
  // reservations no longer fit, so the whole of t2 is rejected — Varys's
  // arrival-order sensitivity. One task completes.
  auto d = make_dumbbell();
  net::Network net(*d.topology);
  add_task(net, 0.0, 4.0,
           {flow(d.left[0], d.right[0], 1.0), flow(d.left[1], d.right[1], 1.0)});
  add_task(net, 0.0, 2.0,
           {flow(d.left[2], d.right[2], 1.0), flow(d.left[3], d.right[3], 1.0)});
  Varys sched;
  (void)test::run(net, sched);

  EXPECT_EQ(net.tasks()[0].state, net::TaskState::kCompleted);
  EXPECT_EQ(net.tasks()[1].state, net::TaskState::kRejected);
  // Rejected flows never transmit a byte.
  EXPECT_DOUBLE_EQ(net.flows()[2].bytes_sent, 0.0);
  EXPECT_DOUBLE_EQ(net.flows()[3].bytes_sent, 0.0);
}

TEST(Varys, AdmittedTasksAlwaysMeetDeadlines) {
  auto d = make_dumbbell();
  net::Network net(*d.topology);
  add_task(net, 0.0, 4.0,
           {flow(d.left[0], d.right[0], 1.0), flow(d.left[1], d.right[1], 1.0)});
  add_task(net, 0.0, 8.0, {flow(d.left[2], d.right[2], 2.0)});
  Varys sched;
  (void)test::run(net, sched);
  for (const auto& t : net.tasks()) {
    if (t.state != net::TaskState::kRejected) {
      EXPECT_EQ(t.state, net::TaskState::kCompleted);
    }
  }
  EXPECT_EQ(test::completed_tasks(net), 2u);
}

TEST(Varys, SpareCapacityAcceleratesCompletion) {
  // Reservation alone (r = 1/4) would finish at the deadline; max-min
  // redistribution of the spare finishes at t=2 as in Fig. 2(c).
  auto d = make_dumbbell();
  net::Network net(*d.topology);
  add_task(net, 0.0, 4.0,
           {flow(d.left[0], d.right[0], 1.0), flow(d.left[1], d.right[1], 1.0)});
  Varys sched;
  (void)test::run(net, sched);
  EXPECT_NEAR(net.flows()[0].completion_time, 2.0, 1e-9);
  EXPECT_NEAR(net.flows()[1].completion_time, 2.0, 1e-9);
}

TEST(Varys, AdmitsWhenReservationsFreeUp) {
  auto d = make_dumbbell();
  net::Network net(*d.topology);
  // First task reserves the full bottleneck (size 4, deadline 4 -> r=1).
  add_task(net, 0.0, 4.0, {flow(d.left[0], d.right[0], 4.0)});
  // Identical task arriving after the first completes is admitted.
  add_task(net, 5.0, 9.0, {flow(d.left[1], d.right[1], 4.0)});
  Varys sched;
  (void)test::run(net, sched);
  EXPECT_EQ(test::completed_tasks(net), 2u);
}

TEST(Varys, RejectsOverCommittingTaskEvenAlone) {
  auto d = make_dumbbell();
  net::Network net(*d.topology);
  // Two flows of one task over the same bottleneck, each needing r=0.75.
  add_task(net, 0.0, 4.0,
           {flow(d.left[0], d.right[0], 3.0), flow(d.left[1], d.right[1], 3.0)});
  Varys sched;
  (void)test::run(net, sched);
  EXPECT_EQ(net.tasks()[0].state, net::TaskState::kRejected);
}

TEST(Varys, PastDeadlineTaskRejectedOutright) {
  auto d = make_dumbbell();
  net::Network net(*d.topology);
  net::FlowSpec f = flow(d.left[0], d.right[0], 1.0);
  f.arrival = 5.0;
  f.deadline = 5.0;  // no time at all
  net.add_task(5.0, 5.0, {&f, 1});
  Varys sched;
  (void)test::run(net, sched);
  EXPECT_EQ(net.tasks()[0].state, net::TaskState::kRejected);
}

TEST(Varys, NoWastedBytesEver) {
  auto d = make_dumbbell(8);
  net::Network net(*d.topology);
  for (int i = 0; i < 8; ++i) {
    add_task(net, 0.1 * i, 0.1 * i + 2.0,
             {flow(d.left[static_cast<std::size_t>(i)],
                   d.right[static_cast<std::size_t>(i)], 1.5)});
  }
  Varys sched;
  (void)test::run(net, sched);
  for (const auto& f : net.flows()) {
    if (f.state != net::FlowState::kCompleted) {
      EXPECT_DOUBLE_EQ(f.bytes_sent, 0.0);
    }
  }
}

}  // namespace
}  // namespace taps::sched
