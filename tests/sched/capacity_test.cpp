// Universal data-plane feasibility: no scheduler may assign rates whose
// per-link sum exceeds capacity, at any instant of any run. Checked by
// wrapping each scheduler and auditing every assign_rates result.
#include <gtest/gtest.h>

#include "common/fixtures.hpp"
#include "sched/pdq.hpp"
#include "workload/task_generator.hpp"

namespace taps::sched {
namespace {

/// Decorator that re-checks link feasibility after every rate assignment.
class CapacityAudit final : public sim::Scheduler {
 public:
  explicit CapacityAudit(std::unique_ptr<sim::Scheduler> inner)
      : inner_(std::move(inner)) {}

  [[nodiscard]] std::string name() const override { return inner_->name(); }
  void bind(net::Network& net) override {
    sim::Scheduler::bind(net);
    inner_->bind(net);
    load_.assign(net.graph().link_count(), 0.0);
  }
  void on_task_arrival(net::TaskId id, double now) override {
    inner_->on_task_arrival(id, now);
  }
  void on_flow_finished(net::FlowId id, double now) override {
    inner_->on_flow_finished(id, now);
  }
  double assign_rates(double now) override {
    const double next = inner_->assign_rates(now);
    audit(now);
    return next;
  }

  [[nodiscard]] std::size_t violations() const { return violations_; }
  [[nodiscard]] std::size_t audits() const { return audits_; }

 private:
  void audit(double /*now*/) {
    ++audits_;
    std::fill(load_.begin(), load_.end(), 0.0);
    for (const auto& f : net_->flows()) {
      if (!f.active() || f.rate <= 0.0) continue;
      for (const topo::LinkId lid : f.path.links) {
        load_[static_cast<std::size_t>(lid)] += f.rate;
      }
    }
    for (const auto& l : net_->graph().links()) {
      // Tolerance: water-filling accumulates ~1e-9-relative float error.
      if (load_[static_cast<std::size_t>(l.id)] > l.capacity * (1.0 + 1e-6)) {
        ++violations_;
      }
    }
  }

  std::unique_ptr<sim::Scheduler> inner_;
  std::vector<double> load_;
  std::size_t violations_ = 0;
  std::size_t audits_ = 0;
};

class CapacityFeasibility
    : public ::testing::TestWithParam<std::tuple<exp::SchedulerKind, std::uint64_t>> {};

TEST_P(CapacityFeasibility, NoLinkEverOversubscribed) {
  const auto [kind, seed] = GetParam();
  const auto topology = workload::make_topology(workload::Scenario::single_rooted(false));
  net::Network net(*topology);
  workload::WorkloadConfig wc;
  wc.task_count = 20;
  wc.flows_per_task_mean = 10.0;
  util::Rng rng(seed);
  (void)workload::generate(net, wc, rng);

  CapacityAudit audit(exp::make_scheduler(kind, 16));
  sim::FluidSimulator simulator(net, audit);
  (void)simulator.run();

  EXPECT_EQ(audit.violations(), 0u) << exp::to_string(kind) << " seed " << seed;
  EXPECT_GT(audit.audits(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, CapacityFeasibility,
    ::testing::Combine(::testing::Values(exp::SchedulerKind::kFairSharing,
                                         exp::SchedulerKind::kD3, exp::SchedulerKind::kPdq,
                                         exp::SchedulerKind::kBaraat,
                                         exp::SchedulerKind::kVarys, exp::SchedulerKind::kTaps),
                       ::testing::Values(3u, 19u)),
    [](const auto& pinfo) {
      return std::string(exp::to_string(std::get<0>(pinfo.param))) + "_seed" +
             std::to_string(std::get<1>(pinfo.param));
    });

// PDQ-specific priority property: whenever PDQ assigns rates, the most
// critical unfinished flow (EDF, then SJF) is never paused.
TEST(PdqPriority, MostCriticalFlowAlwaysRuns) {
  class PdqAudit final : public sim::Scheduler {
   public:
    [[nodiscard]] std::string name() const override { return inner_.name(); }
    void bind(net::Network& net) override {
      sim::Scheduler::bind(net);
      inner_.bind(net);
    }
    void on_task_arrival(net::TaskId id, double now) override {
      inner_.on_task_arrival(id, now);
    }
    void on_flow_finished(net::FlowId id, double now) override {
      inner_.on_flow_finished(id, now);
    }
    double assign_rates(double now) override {
      const double next = inner_.assign_rates(now);
      const net::Flow* top = nullptr;
      for (const auto& f : net_->flows()) {
        if (!f.active() || f.remaining <= sim::kByteEpsilon) continue;
        if (top == nullptr || f.spec.deadline < top->spec.deadline ||
            (f.spec.deadline == top->spec.deadline && f.remaining < top->remaining)) {
          top = &f;
        }
      }
      if (top != nullptr) {
        EXPECT_GT(top->rate, 0.0) << "most critical flow " << top->id() << " paused at t="
                                  << now;
      }
      return next;
    }

   private:
    Pdq inner_;
  };

  const auto topology = workload::make_topology(workload::Scenario::single_rooted(false));
  net::Network net(*topology);
  workload::WorkloadConfig wc;
  wc.task_count = 15;
  wc.flows_per_task_mean = 8.0;
  util::Rng rng(5);
  (void)workload::generate(net, wc, rng);
  PdqAudit audit;
  sim::FluidSimulator simulator(net, audit);
  (void)simulator.run();
}

}  // namespace
}  // namespace taps::sched
