#include "sched/d3.hpp"

#include <gtest/gtest.h>

#include "common/fixtures.hpp"

namespace taps::sched {
namespace {

using test::add_task;
using test::flow;
using test::make_dumbbell;

TEST(D3, Fig1cOneFlowNoTasks) {
  // Paper Fig. 1(c): FCFS granting lets the earlier large flows occupy the
  // bottleneck; only f11 completes (exactly at its deadline), no task does.
  auto d = make_dumbbell();
  net::Network net(*d.topology);
  add_task(net, 0.0, 4.0,
           {flow(d.left[0], d.right[0], 2.0), flow(d.left[1], d.right[1], 4.0)});
  add_task(net, 0.0, 4.0,
           {flow(d.left[2], d.right[2], 1.0), flow(d.left[3], d.right[3], 3.0)});
  D3 sched;
  (void)test::run(net, sched);

  EXPECT_EQ(test::completed_flows(net), 1u);
  EXPECT_EQ(net.flows()[0].state, net::FlowState::kCompleted);  // f11
  EXPECT_NEAR(net.flows()[0].completion_time, 4.0, 1e-9);
  EXPECT_EQ(test::completed_tasks(net), 0u);
}

TEST(D3, GrantsDemandWhenUncontended) {
  auto d = make_dumbbell();
  net::Network net(*d.topology);
  add_task(net, 0.0, 4.0, {flow(d.left[0], d.right[0], 2.0)});
  D3 sched;
  sched.bind(net);
  sched.on_task_arrival(0, 0.0);
  (void)sched.assign_rates(0.0);
  // Demand r = 2/4 = 0.5, plus all spare capacity as base rate -> full link.
  EXPECT_NEAR(net.flows()[0].rate, 1.0, 1e-9);
}

TEST(D3, ArrivalOrderPriorityInversion) {
  // The flaw TAPS highlights: an earlier-arrived far-deadline flow starves a
  // later tighter flow.
  auto d = make_dumbbell();
  net::Network net(*d.topology);
  add_task(net, 0.0, 10.0, {flow(d.left[0], d.right[0], 8.0)});  // early, loose
  add_task(net, 1.0, 3.0, {flow(d.left[1], d.right[1], 1.9)});   // late, tight
  D3 sched;
  (void)test::run(net, sched);
  // At t=1: early flow demands 7/9 ~ 0.78; late flow demands 1.9/2 = 0.95 but
  // only ~0.22 is left -> it cannot finish by t=3.
  EXPECT_EQ(net.flows()[1].state, net::FlowState::kMissed);
  EXPECT_EQ(net.flows()[0].state, net::FlowState::kCompleted);
}

TEST(D3, BaseRateUsesLeftoverCapacity) {
  auto d = make_dumbbell();
  net::Network net(*d.topology);
  // Two flows with low demands: granted demand + equal share of the spare.
  add_task(net, 0.0, 10.0,
           {flow(d.left[0], d.right[0], 1.0), flow(d.left[1], d.right[1], 1.0)});
  D3 sched;
  sched.bind(net);
  sched.on_task_arrival(0, 0.0);
  (void)sched.assign_rates(0.0);
  // Demands 0.1 each, spare 0.8 split equally: 0.5 / 0.5.
  EXPECT_NEAR(net.flows()[0].rate, 0.5, 1e-9);
  EXPECT_NEAR(net.flows()[1].rate, 0.5, 1e-9);
}

TEST(D3, StopsFlowsAfterDeadline) {
  auto d = make_dumbbell();
  net::Network net(*d.topology);
  add_task(net, 0.0, 2.0, {flow(d.left[0], d.right[0], 5.0)});
  D3 sched;
  (void)test::run(net, sched);
  const auto& f = net.flows()[0];
  EXPECT_EQ(f.state, net::FlowState::kMissed);
  EXPECT_LE(f.bytes_sent, 2.0 + 1e-9);  // nothing after the deadline
}

}  // namespace
}  // namespace taps::sched
