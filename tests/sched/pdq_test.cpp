#include "sched/pdq.hpp"

#include <gtest/gtest.h>

#include "common/fixtures.hpp"

namespace taps::sched {
namespace {

using test::add_task;
using test::flow;
using test::make_dumbbell;
using test::make_fig3_topology;

TEST(Pdq, Fig1dTwoFlowsNoTasks) {
  // Paper Fig. 1(d) (Early Termination disabled there): EDF+SJF order is
  // f21, f11, f22, f12; each runs alone at full rate; f21 and f11 finish,
  // f22 and f12 miss -> 2 flows, 0 tasks.
  auto d = make_dumbbell();
  net::Network net(*d.topology);
  add_task(net, 0.0, 4.0,
           {flow(d.left[0], d.right[0], 2.0), flow(d.left[1], d.right[1], 4.0)});
  add_task(net, 0.0, 4.0,
           {flow(d.left[2], d.right[2], 1.0), flow(d.left[3], d.right[3], 3.0)});
  Pdq sched(PdqConfig{.early_termination = false});
  (void)test::run(net, sched);

  EXPECT_EQ(test::completed_flows(net), 2u);
  EXPECT_EQ(net.flows()[2].state, net::FlowState::kCompleted);  // f21 [0,1)
  EXPECT_EQ(net.flows()[0].state, net::FlowState::kCompleted);  // f11 [1,3)
  EXPECT_NEAR(net.flows()[2].completion_time, 1.0, 1e-9);
  EXPECT_NEAR(net.flows()[0].completion_time, 3.0, 1e-9);
  EXPECT_EQ(test::completed_tasks(net), 0u);
}

TEST(Pdq, EarlyTerminationKillsDoomedFlows) {
  auto d = make_dumbbell();
  net::Network net(*d.topology);
  add_task(net, 0.0, 4.0,
           {flow(d.left[0], d.right[0], 2.0), flow(d.left[1], d.right[1], 4.0)});
  add_task(net, 0.0, 4.0,
           {flow(d.left[2], d.right[2], 1.0), flow(d.left[3], d.right[3], 3.0)});
  Pdq sched;  // ET on by default
  (void)test::run(net, sched);

  // Same completions as Fig. 1(d)...
  EXPECT_EQ(test::completed_flows(net), 2u);
  // ...but the doomed flows are cut off early instead of at their deadline:
  // f12 (4 units) is terminated at t=1 when remaining 4 > time-to-deadline 3,
  // having sent nothing; f22 is terminated at t=3 having sent nothing.
  EXPECT_DOUBLE_EQ(net.flows()[1].bytes_sent, 0.0);
  EXPECT_DOUBLE_EQ(net.flows()[3].bytes_sent, 0.0);
}

TEST(Pdq, HighestPriorityRunsAloneAtFullRate) {
  auto d = make_dumbbell();
  net::Network net(*d.topology);
  add_task(net, 0.0, 10.0, {flow(d.left[0], d.right[0], 3.0)});
  add_task(net, 0.0, 20.0, {flow(d.left[1], d.right[1], 3.0)});
  Pdq sched;
  sched.bind(net);
  sched.on_task_arrival(0, 0.0);
  sched.on_task_arrival(1, 0.0);
  (void)sched.assign_rates(0.0);
  EXPECT_NEAR(net.flows()[0].rate, 1.0, 1e-9);  // earlier deadline wins
  EXPECT_DOUBLE_EQ(net.flows()[1].rate, 0.0);   // paused
}

TEST(Pdq, DisjointPathsRunConcurrently) {
  auto d = make_dumbbell();
  net::Network net(*d.topology);
  add_task(net, 0.0, 10.0, {flow(d.left[0], d.right[0], 2.0)});
  add_task(net, 0.0, 10.0, {flow(d.left[1], d.left[2], 2.0)});  // rack-local
  Pdq sched;
  (void)test::run(net, sched);
  EXPECT_NEAR(net.flows()[0].completion_time, 2.0, 1e-9);
  EXPECT_NEAR(net.flows()[1].completion_time, 2.0, 1e-9);
}

TEST(Pdq, PreemptionOnUrgentArrival) {
  auto d = make_dumbbell();
  net::Network net(*d.topology);
  add_task(net, 0.0, 10.0, {flow(d.left[0], d.right[0], 5.0)});
  add_task(net, 1.0, 3.0, {flow(d.left[1], d.right[1], 1.0)});  // tighter
  Pdq sched;
  (void)test::run(net, sched);
  // The late urgent flow preempts: runs [1,2); the early flow resumes and
  // still finishes (5 units with 1 pause -> t=6).
  EXPECT_NEAR(net.flows()[1].completion_time, 2.0, 1e-9);
  EXPECT_NEAR(net.flows()[0].completion_time, 6.0, 1e-9);
  EXPECT_EQ(test::completed_tasks(net), 2u);
}

// Paper Fig. 3: with bounded switch flow lists, PDQ cannot use the idle
// bottleneck links in the first time unit and f4 misses; global scheduling
// (TAPS, tested in core/) completes all four.
TEST(Pdq, Fig3FlowListLimitLosesF4) {
  auto t = make_fig3_topology();
  net::Network net(*t.topology);
  add_task(net, 0.0, 1.0, {flow(t.h1, t.h2, 1.0)});  // f1
  add_task(net, 0.0, 2.0, {flow(t.h1, t.h4, 1.0)});  // f2
  add_task(net, 0.0, 2.0, {flow(t.h3, t.h2, 1.0)});  // f3
  add_task(net, 0.0, 3.0, {flow(t.h3, t.h4, 2.0)});  // f4
  Pdq sched(PdqConfig{.early_termination = true, .flow_list_limit = 2});
  (void)test::run(net, sched);

  EXPECT_EQ(net.flows()[0].state, net::FlowState::kCompleted);
  EXPECT_EQ(net.flows()[1].state, net::FlowState::kCompleted);
  EXPECT_EQ(net.flows()[2].state, net::FlowState::kCompleted);
  EXPECT_EQ(net.flows()[3].state, net::FlowState::kMissed);  // the paper's f4
  EXPECT_NEAR(net.flows()[2].completion_time, 2.0, 1e-9);    // f3 runs [1,2)
}

TEST(Pdq, Fig3UnlimitedListCompletesAll) {
  // Idealized PDQ (no switch list bound) can actually fit all four flows —
  // the Fig. 3 failure is specifically the bounded-flow-list artifact.
  auto t = make_fig3_topology();
  net::Network net(*t.topology);
  add_task(net, 0.0, 1.0, {flow(t.h1, t.h2, 1.0)});
  add_task(net, 0.0, 2.0, {flow(t.h1, t.h4, 1.0)});
  add_task(net, 0.0, 2.0, {flow(t.h3, t.h2, 1.0)});
  add_task(net, 0.0, 3.0, {flow(t.h3, t.h4, 2.0)});
  Pdq sched;
  (void)test::run(net, sched);
  EXPECT_EQ(test::completed_flows(net), 4u);
}

}  // namespace
}  // namespace taps::sched
