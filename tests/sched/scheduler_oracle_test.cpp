// Every scheduler runs under the runtime invariant oracle
// (sim::InvariantChecker): capacity, byte conservation, monotone time and
// deadline discipline for all of them, plus exclusive link occupancy for
// TAPS. Randomized task sets come from the property kit, so a failing
// workload prints its seed and reproduces deterministically.
//
// The negative tests prove the oracle has teeth: a deliberately seeded
// planner mutation (skipping OccupancyMap::occupy for one flow — the
// TapsConfig::fault_skip_occupy knob) and a rogue rate assignment must both
// be caught.
#include <gtest/gtest.h>

#include <optional>
#include <sstream>

#include "common/fixtures.hpp"
#include "common/prop.hpp"
#include "core/taps_scheduler.hpp"
#include "sim/invariant_checker.hpp"
#include "workload/task_generator.hpp"

namespace taps::sched {
namespace {

void run_under_oracle(const workload::WorkloadConfig& wc, std::uint64_t workload_seed,
                      exp::SchedulerKind kind) {
  const auto topology = workload::make_topology(workload::Scenario::single_rooted(false));
  net::Network net(*topology);
  util::Rng rng(workload_seed);
  (void)workload::generate(net, wc, rng);

  const auto scheduler = exp::make_scheduler(kind, 16);
  sim::InvariantConfig cfg;
  cfg.exclusive_links = kind == exp::SchedulerKind::kTaps;
  sim::InvariantChecker oracle(net, cfg);
  sim::FluidSimulator simulator(net, *scheduler);
  simulator.set_observer(&oracle);
  (void)simulator.run();  // oracle throws InvariantViolation on any breach

  ASSERT_GT(oracle.segments(), 0u);
  ASSERT_GT(oracle.events(), 0u);
}

// Fixed-seed matrix: one named test per scheduler, so a regression points at
// the offending policy immediately.
class SchedulerOracle
    : public ::testing::TestWithParam<std::tuple<exp::SchedulerKind, std::uint64_t>> {};

TEST_P(SchedulerOracle, InvariantsHoldOnRandomizedWorkload) {
  const auto [kind, seed] = GetParam();
  workload::WorkloadConfig wc;
  wc.task_count = 20;
  wc.flows_per_task_mean = 10.0;
  run_under_oracle(wc, seed, kind);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SchedulerOracle,
    ::testing::Combine(::testing::ValuesIn(exp::extended_schedulers()),
                       ::testing::Values(1u, 42u)),
    [](const auto& pinfo) {
      return std::string(exp::to_string(std::get<0>(pinfo.param))) + "_seed" +
             std::to_string(std::get<1>(pinfo.param));
    });

// Property form: workload parameters themselves are randomized (including
// multi-wave tasks and heavy-tailed sizes) and every scheduler must survive
// the oracle on the same task set.
struct WorkloadCase {
  int task_count = 0;
  double flows_per_task_mean = 0.0;
  double arrival_rate = 0.0;
  double mean_deadline = 0.0;
  int waves_per_task = 1;
  workload::SizeDistribution size_distribution = workload::SizeDistribution::kNormal;
  std::uint64_t workload_seed = 0;
};

std::ostream& operator<<(std::ostream& os, const WorkloadCase& c) {
  return os << "tasks=" << c.task_count << " flows_mean=" << c.flows_per_task_mean
            << " lambda=" << c.arrival_rate << " deadline_mean=" << c.mean_deadline
            << " waves=" << c.waves_per_task
            << " sizes=" << workload::to_string(c.size_distribution)
            << " workload_seed=" << c.workload_seed;
}

WorkloadCase generate_case(util::Rng& rng) {
  WorkloadCase c;
  c.task_count = static_cast<int>(rng.uniform_int(3, 18));
  c.flows_per_task_mean = rng.uniform_real(1.0, 12.0);
  c.arrival_rate = rng.uniform_real(50.0, 600.0);
  c.mean_deadline = rng.uniform_real(0.010, 0.080);
  c.waves_per_task = static_cast<int>(rng.uniform_int(1, 3));
  c.size_distribution =
      static_cast<workload::SizeDistribution>(rng.uniform_int(0, 2));
  c.workload_seed = static_cast<std::uint64_t>(rng.uniform_int(1, 1'000'000));
  return c;
}

TAPS_PROP(SchedulerOracleProp, AllSchedulersSurviveOracle, 10) {
  prop.for_all(generate_case, [](const WorkloadCase& c) -> std::optional<std::string> {
    workload::WorkloadConfig wc;
    wc.task_count = c.task_count;
    wc.flows_per_task_mean = c.flows_per_task_mean;
    wc.arrival_rate = c.arrival_rate;
    wc.mean_deadline = c.mean_deadline;
    wc.waves_per_task = c.waves_per_task;
    wc.size_distribution = c.size_distribution;
    for (const exp::SchedulerKind kind : exp::extended_schedulers()) {
      try {
        run_under_oracle(wc, c.workload_seed, kind);
      } catch (const sim::InvariantViolation& e) {
        return std::string(exp::to_string(kind)) + ": " + e.what();
      }
    }
    return std::nullopt;
  });
}

// ---- negative tests: the oracle must catch seeded faults ----------------

/// Two equal single-flow tasks sharing the dumbbell bottleneck. With the
/// planner mutation active, flow 0's slices are never recorded in the
/// occupancy map, so flow 1 is granted the same interval and both transmit
/// simultaneously — exactly the regression the oracle exists to catch.
void run_faulted_taps(net::FlowId faulty_flow) {
  test::Dumbbell d = test::make_dumbbell(4);
  net::Network net(*d.topology);
  test::add_task(net, 0.0, 10.0, {test::flow(d.left[0], d.right[0], 4.0)});
  test::add_task(net, 0.0, 10.0, {test::flow(d.left[1], d.right[1], 4.0)});

  core::TapsConfig config;
  config.fault_skip_occupy = faulty_flow;
  core::TapsScheduler scheduler(config);
  sim::InvariantConfig cfg;
  cfg.exclusive_links = true;
  sim::InvariantChecker oracle(net, cfg);
  sim::FluidSimulator simulator(net, scheduler);
  simulator.set_observer(&oracle);
  (void)simulator.run();
}

TEST(SchedulerOracleNegative, SeededOccupancySkipIsCaught) {
  EXPECT_THROW(run_faulted_taps(0), sim::InvariantViolation);
}

TEST(SchedulerOracleNegative, SameScenarioPassesWithoutFault) {
  EXPECT_NO_THROW(run_faulted_taps(net::kInvalidFlow));
}

/// A scheduler that assigns twice the link capacity: the universal capacity
/// invariant (checked for every scheduler, not just TAPS) must fire.
class OverdriveScheduler final : public BaseScheduler {
 public:
  [[nodiscard]] std::string name() const override { return "Overdrive"; }
  void on_task_arrival(net::TaskId id, double now) override { admit_all_ecmp(id, now); }
  double assign_rates(double /*now*/) override {
    for (const net::FlowId fid : active_flows()) {
      net::Flow& f = net_->flow(fid);
      double capacity = sim::kInfinity;
      for (const topo::LinkId lid : f.path.links) {
        capacity = std::min(capacity, net_->link_capacity(lid));
      }
      f.set_rate(2.0 * capacity);
    }
    return sim::kInfinity;
  }
};

TEST(SchedulerOracleNegative, CapacityOverdriveIsCaught) {
  test::Dumbbell d = test::make_dumbbell(2);
  net::Network net(*d.topology);
  test::add_task(net, 0.0, 10.0, {test::flow(d.left[0], d.right[0], 4.0)});

  OverdriveScheduler scheduler;
  sim::InvariantChecker oracle(net);
  sim::FluidSimulator simulator(net, scheduler);
  simulator.set_observer(&oracle);
  EXPECT_THROW((void)simulator.run(), sim::InvariantViolation);
}

}  // namespace
}  // namespace taps::sched
